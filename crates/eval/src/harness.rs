//! Dataset generation: simulated subjects → feature vectors.
//!
//! [`Harness`] runs the full EchoImage front end (capture → band-pass →
//! distance estimation → acoustic imaging → CNN features) for a subject
//! under a [`CaptureSpec`] describing the experimental condition
//! (environment, noise, distance, session). This is the piece every
//! experiment runner shares.

use echo_ml::GrayImage;
use echo_obs::TraceCtx;
use echo_sim::{
    BeepCapture, BodyModel, EnvironmentKind, FaultPlan, NoiseKind, Placement, Scene, SceneConfig,
    UserProfile,
};
use echoimage_core::par::parallel_map_indexed;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{DistanceEstimate, EchoImageError};
use serde::{Deserialize, Serialize};

/// One experimental condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureSpec {
    /// Experiment environment.
    pub environment: EnvironmentKind,
    /// Ambient-noise condition.
    pub noise: NoiseKind,
    /// True horizontal user–array distance, metres.
    pub distance: f64,
    /// Session index (the paper's Sessions 1–3 → 0–2).
    pub session: u32,
    /// Number of beeps to capture.
    pub beeps: usize,
    /// First beep index (decorrelates noise across draws).
    pub beep_offset: u64,
    /// Per-microphone gain mismatch std, dB (device imperfection sweep).
    pub mic_gain_error_db: f64,
    /// Per-microphone timing mismatch std, seconds.
    pub mic_timing_error: f64,
    /// Channel faults injected into every captured train. An empty plan
    /// leaves the capture path byte-for-byte unchanged; a non-empty plan
    /// routes imaging through the degraded (health-screened) pipeline.
    pub faults: FaultPlan,
    /// Image-source room model. `None` renders the legacy free-field
    /// scene byte-for-byte; `Some` adds wall-reflection ghosts to
    /// *every* capture built from this spec — enrolment, genuine
    /// probes, and attack probes alike — so multipath alone never
    /// separates clean captures from attacks.
    pub room: Option<echo_sim::RoomModel>,
}

impl CaptureSpec {
    /// The paper's default condition: quiet laboratory, 0.7 m, session 1.
    pub fn default_lab(beeps: usize) -> Self {
        CaptureSpec {
            environment: EnvironmentKind::Laboratory,
            noise: NoiseKind::Quiet,
            distance: 0.7,
            session: 0,
            beeps,
            beep_offset: 0,
            mic_gain_error_db: 0.0,
            mic_timing_error: 0.0,
            faults: FaultPlan::none(),
            room: None,
        }
    }
}

/// Harness construction parameters: the pipeline configuration plus the
/// evaluation-level concurrency.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HarnessConfig {
    /// Pipeline configuration shared by every subject.
    pub pipeline: PipelineConfig,
    /// Scene/population base seed.
    pub seed: u64,
    /// Worker threads for the subject×session fan-out
    /// ([`Harness::features_for_batch`] and the protocol runners): `0`
    /// uses available parallelism, `1` forces serial. Results are
    /// bit-identical at every setting.
    pub threads: usize,
}

/// The shared experiment harness.
///
/// # Example
///
/// ```
/// use echo_eval::harness::{CaptureSpec, Harness};
/// use echo_sim::Population;
///
/// let harness = Harness::new(7);
/// let pop = Population::paper_table1(7);
/// let feats = harness
///     .features_for(&pop.profiles()[0].body(), &CaptureSpec::default_lab(2))
///     .unwrap();
/// assert_eq!(feats.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Harness {
    pipeline: EchoImagePipeline,
    seed: u64,
    threads: usize,
}

impl Harness {
    /// Creates a harness with the default pipeline configuration.
    pub fn new(seed: u64) -> Self {
        Self::with_config(PipelineConfig::default(), seed)
    }

    /// Creates a harness with a custom pipeline configuration (smaller
    /// grids for smoke tests, ablation beamformers, …). The fan-out
    /// thread count is taken from [`PipelineConfig::threads`].
    pub fn with_config(config: PipelineConfig, seed: u64) -> Self {
        Self::from_config(HarnessConfig {
            threads: config.threads,
            pipeline: config,
            seed,
        })
    }

    /// Creates a harness from a full [`HarnessConfig`].
    pub fn from_config(config: HarnessConfig) -> Self {
        Harness {
            pipeline: EchoImagePipeline::new(config.pipeline),
            seed: config.seed,
            threads: config.threads,
        }
    }

    /// Worker threads used for batch fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A clone of the pipeline pinned to one thread, for use *inside*
    /// fan-out workers — the batch level is the parallel one, so each
    /// job images serially instead of stacking thread pools.
    pub(crate) fn worker_pipeline(&self) -> EchoImagePipeline {
        EchoImagePipeline::with_array(
            self.pipeline.config().clone().with_threads(1),
            self.pipeline.array().clone(),
        )
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &EchoImagePipeline {
        &self.pipeline
    }

    /// Builds the scene for a condition (environment layout and noise
    /// streams derive from the harness seed).
    pub fn scene(&self, spec: &CaptureSpec) -> Scene {
        let mut cfg = SceneConfig::with_environment(spec.environment, spec.noise, self.seed);
        cfg.mic_gain_error_db = spec.mic_gain_error_db;
        cfg.mic_timing_error = spec.mic_timing_error;
        cfg.room = spec.room.clone();
        Scene::new(cfg)
    }

    /// Captures `spec.beeps` beeps of `body` and returns the acoustic
    /// images plus the distance estimate used to build them.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors (undetectable direct path or echo,
    /// beamforming failures).
    pub fn images_for(
        &self,
        body: &BodyModel,
        spec: &CaptureSpec,
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        let captures = self.capture_train(body, spec);
        Self::route_images(&self.pipeline, spec, &captures)
    }

    /// Captures the spec's train with its fault plan applied.
    fn capture_train(&self, body: &BodyModel, spec: &CaptureSpec) -> Vec<BeepCapture> {
        self.capture_train_traced(TraceCtx::none(), body, spec)
    }

    /// [`Harness::capture_train`] recording simulator spans (`sim.beep`
    /// per beep, `sim.fault_inject` when a fault plan fires) under `ctx`.
    fn capture_train_traced(
        &self,
        ctx: TraceCtx,
        body: &BodyModel,
        spec: &CaptureSpec,
    ) -> Vec<BeepCapture> {
        let scene = self.scene(spec);
        let captures = scene.capture_train_traced(
            ctx,
            body,
            &Placement::standing_front(spec.distance),
            spec.session,
            spec.beeps,
            spec.beep_offset,
        );
        if spec.faults.is_empty() {
            captures
        } else {
            spec.faults.apply_train_traced(ctx, &captures)
        }
    }

    /// Routes a train through the normal or degraded imaging path. Only
    /// specs with a non-empty fault plan pay for health screening; the
    /// clean path is exactly the pre-fault-layer behaviour.
    fn route_images(
        pipeline: &EchoImagePipeline,
        spec: &CaptureSpec,
        captures: &[BeepCapture],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        Self::route_images_traced(TraceCtx::none(), pipeline, spec, captures)
    }

    /// [`Harness::route_images`] under an existing trace context.
    fn route_images_traced(
        ctx: TraceCtx,
        pipeline: &EchoImagePipeline,
        spec: &CaptureSpec,
        captures: &[BeepCapture],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        if spec.faults.is_empty() {
            pipeline.images_from_train_traced(ctx, captures)
        } else {
            pipeline
                .images_from_train_degraded_traced(ctx, captures)
                .map(|(images, est, _)| (images, est))
        }
    }

    /// Like [`Harness::images_for`], with extra images constructed at
    /// plane distances offset from the estimate (enrolment-time plane
    /// diversity).
    ///
    /// # Errors
    ///
    /// See [`Harness::images_for`].
    pub fn images_multi_plane(
        &self,
        body: &BodyModel,
        spec: &CaptureSpec,
        plane_offsets: &[f64],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        let captures = self.capture_train(body, spec);
        if spec.faults.is_empty() {
            self.pipeline
                .images_from_train_multi_plane(&captures, plane_offsets)
        } else {
            self.pipeline
                .images_from_train_multi_plane_degraded(&captures, plane_offsets)
                .map(|(images, est, _)| (images, est))
        }
    }

    /// Captures and converts straight to feature vectors.
    ///
    /// # Errors
    ///
    /// See [`Harness::images_for`].
    pub fn features_for(
        &self,
        body: &BodyModel,
        spec: &CaptureSpec,
    ) -> Result<Vec<Vec<f64>>, EchoImageError> {
        let (images, _) = self.images_for(body, spec)?;
        Ok(self.pipeline.features_batch(&images))
    }

    /// Convenience over a [`UserProfile`].
    ///
    /// # Errors
    ///
    /// See [`Harness::images_for`].
    pub fn features_for_profile(
        &self,
        profile: &UserProfile,
        spec: &CaptureSpec,
    ) -> Result<Vec<Vec<f64>>, EchoImageError> {
        self.features_for(&profile.body(), spec)
    }

    /// Extracts features for a batch of images (used by the augmentation
    /// experiment, which synthesises extra images before featurising),
    /// fanned over the harness's worker threads.
    pub fn features_of_images(&self, images: &[GrayImage]) -> Vec<Vec<f64>> {
        self.pipeline
            .feature_extractor()
            .extract_batch_threaded(images, self.threads)
    }

    /// Runs a whole batch of `(subject, condition)` jobs — the
    /// subject×session fan-out of an evaluation — across the harness's
    /// worker threads. The result vector is in job order regardless of
    /// thread count, and every job is independent (its own scene, its
    /// own captures), so the output is bit-identical to calling
    /// [`Harness::features_for_profile`] in a loop.
    pub fn features_for_batch(
        &self,
        jobs: &[(UserProfile, CaptureSpec)],
    ) -> Vec<Result<Vec<Vec<f64>>, EchoImageError>> {
        let root = echo_obs::root_span("eval.batch");
        let ctx = root.ctx();
        let _span = echo_obs::span!("stage.eval_batch");
        echo_obs::counter!("eval.jobs").add(jobs.len() as u64);
        let worker = self.worker_pipeline();
        let results = parallel_map_indexed(jobs, self.threads, |i, (profile, spec)| {
            let mut jspan = ctx.child_at("eval.job", i as u64);
            jspan.attr_u64("user", profile.id as u64);
            jspan.attr_u64("session", spec.session as u64);
            let captures = self.capture_train_traced(jspan.ctx(), &profile.body(), spec);
            let (images, _) = Self::route_images_traced(jspan.ctx(), &worker, spec, &captures)?;
            // Each job is already on a pool worker; extract its images
            // serially with one reused scratch (no nested fan-out).
            Ok(worker.feature_extractor().extract_batch(&images))
        });
        let failures = results.iter().filter(|r| r.is_err()).count();
        echo_obs::counter!("eval.job_failures").add(failures as u64);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_sim::Population;
    use echoimage_core::config::ImagingConfig;

    fn small_harness() -> Harness {
        // A small grid keeps unit tests fast; experiments use defaults.
        let cfg = PipelineConfig {
            imaging: ImagingConfig {
                grid_n: 16,
                grid_spacing: 0.1,
                ..ImagingConfig::default()
            },
            ..PipelineConfig::default()
        };
        Harness::with_config(cfg, 3)
    }

    #[test]
    fn features_have_consistent_shape() {
        let h = small_harness();
        let pop = Population::paper_table1(3);
        let f = h
            .features_for_profile(&pop.profiles()[0], &CaptureSpec::default_lab(2))
            .unwrap();
        assert_eq!(f.len(), 2);
        let d = h.pipeline().feature_extractor().feature_len();
        assert!(f.iter().all(|v| v.len() == d));
    }

    #[test]
    fn harness_is_deterministic() {
        let h1 = small_harness();
        let h2 = small_harness();
        let body = BodyModel::from_seed(5);
        let spec = CaptureSpec::default_lab(1);
        assert_eq!(
            h1.features_for(&body, &spec).unwrap(),
            h2.features_for(&body, &spec).unwrap()
        );
    }

    #[test]
    fn beep_offset_changes_samples_but_not_identity() {
        let h = small_harness();
        let body = BodyModel::from_seed(6);
        let mut spec = CaptureSpec::default_lab(1);
        let a = h.features_for(&body, &spec).unwrap();
        spec.beep_offset = 50;
        let b = h.features_for(&body, &spec).unwrap();
        assert_ne!(a, b, "different beeps should differ");
    }

    #[test]
    fn distance_estimate_is_near_spec_distance() {
        let h = small_harness();
        let body = BodyModel::from_seed(7);
        let (_, est) = h.images_for(&body, &CaptureSpec::default_lab(4)).unwrap();
        assert!(
            (est.horizontal_distance - 0.7).abs() < 0.2,
            "{}",
            est.horizontal_distance
        );
    }
}
