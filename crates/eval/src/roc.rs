//! ROC / EER analysis of the spoofer gate.
//!
//! The paper reports threshold-at-zero metrics only; sweeping the gate's
//! decision threshold gives the full trade-off curve (an extension, and
//! standard practice for biometric systems).

use serde::{Deserialize, Serialize};

/// One operating point of the gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold.
    pub threshold: f64,
    /// False accept rate (impostors passing) at this threshold.
    pub far: f64,
    /// False reject rate (genuine users failing) at this threshold.
    pub frr: f64,
}

/// A full ROC sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// Operating points, ordered by increasing threshold.
    pub points: Vec<RocPoint>,
    /// Equal error rate (where FAR ≈ FRR).
    pub eer: f64,
    /// Threshold achieving the EER.
    pub eer_threshold: f64,
    /// Area under the ROC curve (1.0 = perfect separation).
    pub auc: f64,
}

/// Sweeps every distinct score as a threshold over genuine and impostor
/// gate scores (higher = more genuine).
///
/// The sweep covers both curve endpoints: the lowest observed score
/// accepts everything — (FAR, FRR) = (1, 0) — and a sentinel threshold
/// just past the highest score rejects everything — (FAR, FRR) =
/// (0, 1). Without the sentinel the curve would stop at the last
/// observed score, which still accepts at least one sample, so the
/// (0, 1) corner every ROC is defined to reach would be missing and
/// trapezoidal integrations over the points would come up short.
///
/// # Panics
///
/// Panics if either score list is empty.
pub fn roc_curve(genuine: &[f64], impostor: &[f64]) -> RocCurve {
    assert!(
        !genuine.is_empty() && !impostor.is_empty(),
        "ROC needs both genuine and impostor scores"
    );
    let mut thresholds: Vec<f64> = genuine.iter().chain(impostor.iter()).copied().collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();
    // Finite sentinel (not f64::INFINITY — the curve is serialised, and
    // JSON has no infinity) strictly above the maximum score.
    if let Some(&max) = thresholds.last() {
        let sentinel = max.next_up();
        if sentinel > max && sentinel.is_finite() {
            thresholds.push(sentinel);
        }
    }

    let mut points = Vec::with_capacity(thresholds.len());
    let mut eer = 1.0;
    let mut eer_threshold = 0.0;
    let mut best_gap = f64::INFINITY;
    for &t in &thresholds {
        let far = impostor.iter().filter(|&&s| s >= t).count() as f64 / impostor.len() as f64;
        let frr = genuine.iter().filter(|&&s| s < t).count() as f64 / genuine.len() as f64;
        let gap = (far - frr).abs();
        if gap < best_gap {
            best_gap = gap;
            eer = (far + frr) / 2.0;
            eer_threshold = t;
        }
        points.push(RocPoint {
            threshold: t,
            far,
            frr,
        });
    }

    // AUC via the probability interpretation: P(genuine > impostor)
    // (+½ for ties).
    let mut wins = 0.0;
    for &g in genuine {
        for &i in impostor {
            if g > i {
                wins += 1.0;
            } else if g == i {
                wins += 0.5;
            }
        }
    }
    let auc = wins / (genuine.len() * impostor.len()) as f64;

    RocCurve {
        points,
        eer,
        eer_threshold,
        auc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_zero_eer_unit_auc() {
        let genuine = [1.0, 2.0, 3.0];
        let impostor = [-3.0, -2.0, -1.0];
        let roc = roc_curve(&genuine, &impostor);
        assert_eq!(roc.auc, 1.0);
        assert!(roc.eer < 1e-9);
        // A threshold between the populations separates them.
        assert!(roc.eer_threshold > -1.0 && roc.eer_threshold <= 1.0);
    }

    #[test]
    fn random_scores_have_half_auc() {
        // Interleaved identical distributions.
        let genuine: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let impostor: Vec<f64> = (0..50).map(|i| ((i + 5) % 10) as f64).collect();
        let roc = roc_curve(&genuine, &impostor);
        assert!((roc.auc - 0.5).abs() < 0.05, "auc {}", roc.auc);
        assert!(roc.eer > 0.3 && roc.eer < 0.7, "eer {}", roc.eer);
    }

    #[test]
    fn far_and_frr_are_monotone_in_threshold() {
        let genuine = [0.5, 1.0, 1.5, 2.0];
        let impostor = [-1.0, 0.0, 0.7, 1.2];
        let roc = roc_curve(&genuine, &impostor);
        for w in roc.points.windows(2) {
            assert!(w[1].far <= w[0].far, "FAR must fall as threshold rises");
            assert!(w[1].frr >= w[0].frr, "FRR must rise as threshold rises");
        }
    }

    #[test]
    fn overlapping_distributions_give_intermediate_eer() {
        let genuine = [0.0, 0.5, 1.0, 1.5, 2.0];
        let impostor = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let roc = roc_curve(&genuine, &impostor);
        assert!(roc.eer > 0.05 && roc.eer < 0.5, "eer {}", roc.eer);
        assert!(roc.auc > 0.5 && roc.auc < 1.0, "auc {}", roc.auc);
    }

    #[test]
    #[should_panic(expected = "ROC needs")]
    fn empty_scores_panic() {
        let _ = roc_curve(&[], &[1.0]);
    }

    #[test]
    fn curve_reaches_both_endpoints() {
        // Regression: the sweep used to stop at the highest observed
        // score, which still accepts that score's sample — the (0, 1)
        // corner was never emitted.
        let genuine = [0.5, 1.0, 2.0];
        let impostor = [-1.0, 0.0, 0.8];
        let roc = roc_curve(&genuine, &impostor);
        let first = roc.points.first().unwrap();
        assert_eq!((first.far, first.frr), (1.0, 0.0), "accept-all endpoint");
        let last = roc.points.last().unwrap();
        assert_eq!((last.far, last.frr), (0.0, 1.0), "reject-all endpoint");
        assert!(last.threshold.is_finite(), "sentinel must serialise");
        assert!(last.threshold > 2.0);
    }
}
