//! Smoke tests: every experiment runner executes end-to-end at tiny
//! scale and produces structurally sound output. (Full-scale runs are
//! the `echo-bench` binaries.)

use echo_eval::experiments::{
    fault_sweep, fig05, fig08, fig11, fig12, fig13, fig14, protocol, table1,
};
use echo_sim::{FaultKind, NoiseKind};

fn tiny_protocol() -> protocol::ProtocolConfig {
    protocol::ProtocolConfig {
        train_beeps: 4,
        enroll_batch: 2,
        augment_offsets: vec![],
        plane_offsets: vec![],
        test_beeps: 2,
        test_sessions: vec![0],
        ..protocol::ProtocolConfig::default()
    }
}

#[test]
fn table1_smoke() {
    let t = table1::run(9);
    assert_eq!(t.rows.len(), 5);
    assert_eq!(t.registered + t.spoofers, 20);
}

#[test]
fn fig05_smoke() {
    let out = fig05::run(&fig05::Config {
        beeps: 4,
        ..fig05::Config::default()
    })
    .expect("fig05 failed");
    assert!(out.slant_distance > 0.0);
    assert!(out.horizontal_distance > 0.0);
    assert!(!out.envelope.is_empty());
    assert!(!out.peaks.is_empty());
    assert!(out.error < 0.3, "error {}", out.error);
}

#[test]
fn fig08_smoke() {
    let out = fig08::run(&fig08::Config {
        beeps: 2,
        ..fig08::Config::default()
    })
    .expect("fig08 failed");
    assert_eq!(out.image_a.len(), out.grid_n * out.grid_n);
    assert!(out.same_user_similarity > out.cross_user_similarity);
}

#[test]
fn fig11_smoke() {
    let out = fig11::run(&fig11::Config {
        seed: 5,
        protocol: tiny_protocol(),
    })
    .expect("fig11 failed");
    // 12 users + 8 spoofers × 2 test beeps × 1 session.
    assert_eq!(out.confusion.total(), 20 * 2);
    assert!(out.user_identification >= 0.0 && out.user_identification <= 1.0);
    assert!(out.spoofer_detection >= 0.0 && out.spoofer_detection <= 1.0);
}

#[test]
fn fig12_smoke() {
    let out = fig12::run(&fig12::Config {
        seed: 5,
        users: 2,
        spoofers: 1,
        protocol: tiny_protocol(),
    })
    .expect("fig12 failed");
    // 3 environments × 4 noises.
    assert_eq!(out.cells.len(), 12);
    assert!(out
        .cell(echo_sim::EnvironmentKind::Outdoor, NoiseKind::Traffic)
        .is_some());
}

#[test]
fn fig13_smoke() {
    let out = fig13::run(&fig13::Config {
        seed: 5,
        users: 2,
        spoofers: 1,
        distances: vec![0.7, 1.2],
        noises: vec![NoiseKind::Quiet],
        protocol: tiny_protocol(),
    })
    .expect("fig13 failed");
    assert_eq!(out.points.len(), 2);
    let series = out.f_measure_series(NoiseKind::Quiet);
    assert_eq!(series.len(), 2);
    assert!(series[0].0 < series[1].0, "ordered by distance");
}

#[test]
fn fault_sweep_smoke() {
    let out = fault_sweep::run(&fault_sweep::Config {
        seed: 5,
        users: 2,
        spoofers: 1,
        kinds: vec![FaultKind::Dead],
        severities: vec![1.0],
        faulted_mic_counts: vec![1, 4],
        protocol: tiny_protocol(),
    })
    .expect("fault_sweep failed");
    assert!(out.baseline_eer >= 0.0 && out.baseline_eer <= 1.0);
    assert_eq!(out.points.len(), 2);
    // One dead mic: the subset path scores every probe.
    let p1 = &out.points[0];
    assert_eq!(p1.faulted_mics, 1);
    assert_eq!(p1.degraded_rejects, 0);
    assert!(p1.genuine_scores > 0 && p1.impostor_scores > 0);
    // Four dead mics: below min_mics, every probe is rejected before
    // scoring and the conventions kick in.
    let p4 = &out.points[1];
    assert_eq!(p4.faulted_mics, 4);
    assert_eq!(p4.degraded_rejects, 3, "2 genuine + 1 spoofer probes");
    assert_eq!((p4.eer, p4.auc), (1.0, 0.5));
    // The audit pass ran 2 users + 1 all-mics-dead probe, and every
    // rejection satisfied the flight-recorder contract (run() asserts
    // it; the summary re-states the tallies).
    assert_eq!(out.audit.attempts, 3);
    assert!(out.audit.rejected >= 1, "all-mics-dead probe must reject");
    assert_eq!(out.audit.rejected, out.audit.rejected_with_reason);
    assert_eq!(out.audit.rejected, out.audit.rejected_with_injected_mask);
}

#[test]
fn fig14_smoke() {
    let out = fig14::run(&fig14::Config {
        seed: 5,
        users: 2,
        spoofers: 1,
        train_sizes: vec![2, 4],
        target_distances: vec![0.6, 1.0],
        test_beeps: 2,
        ..fig14::Config::default()
    })
    .expect("fig14 failed");
    assert_eq!(out.points.len(), 2);
    assert_eq!(out.points[0].train_beeps, 2);
    assert_eq!(out.points[1].train_beeps, 4);
}
