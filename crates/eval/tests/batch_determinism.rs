//! The evaluation fan-out must not change any number it reports.
//!
//! `Harness::features_for_batch` and the protocol runners fan subjects
//! out over worker threads; these tests pin their outputs to the serial
//! reference bit-for-bit (feature vectors) and exactly (confusion
//! matrices).

use echo_eval::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use echo_eval::harness::{CaptureSpec, Harness, HarnessConfig};
use echo_sim::Population;
use echoimage_core::config::{ImagingConfig, PipelineConfig};

fn harness(threads: usize) -> Harness {
    let pipeline = PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        ..PipelineConfig::default()
    };
    Harness::from_config(HarnessConfig {
        pipeline,
        seed: 3,
        threads,
    })
}

#[test]
fn batch_features_are_thread_count_invariant() {
    let pop = Population::generate(3, 2, 5);
    let jobs: Vec<_> = pop
        .profiles()
        .iter()
        .map(|p| (*p, CaptureSpec::default_lab(2)))
        .collect();

    let serial = harness(1).features_for_batch(&jobs);
    let parallel = harness(4).features_for_batch(&jobs);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.len(), fb.len());
            for (x, y) in fa.iter().zip(fb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "feature bits diverged");
            }
        }
    }
}

#[test]
fn protocol_run_is_thread_count_invariant() {
    let pop = Population::generate(4, 2, 9);
    let spec = CaptureSpec::default_lab(0);
    let proto = ProtocolConfig {
        train_beeps: 6,
        enroll_batch: 3,
        test_beeps: 2,
        test_sessions: vec![0],
        ..ProtocolConfig::default()
    };

    let run = |threads: usize| {
        let h = harness(threads);
        let registered: Vec<_> = pop.registered().collect();
        let spoofers: Vec<_> = pop.spoofers().collect();
        let auth = enroll(&h, &registered, &spec, &proto).unwrap();
        evaluate(&h, &auth, &registered, &spoofers, &spec, &proto)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "confusion matrices diverged");
}
