//! Serde round-trips for every serialisable configuration and result
//! type: experiment artefacts must reload bit-identically.

use echo_eval::experiments::{fault_sweep, fig11, fig12, fig13, fig14, protocol::ProtocolConfig};
use echo_eval::harness::CaptureSpec;
use echo_eval::metrics::{AuthMetrics, ConfusionMatrix, SPOOFER};
use echoimage_core::auth::AuthConfig;
use echoimage_core::config::PipelineConfig;
use echoimage_core::AuthDecision;

fn round_trip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serialise");
    let back: T = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(&back, value);
}

#[test]
fn pipeline_config_round_trips() {
    round_trip(&PipelineConfig::default());
    round_trip(&PipelineConfig::paper());
}

#[test]
fn protocol_and_capture_spec_round_trip() {
    round_trip(&ProtocolConfig::default());
    round_trip(&CaptureSpec::default_lab(7));
    round_trip(&AuthConfig::default());
}

#[test]
fn experiment_configs_round_trip() {
    round_trip(&fig11::Config::default());
    round_trip(&fig12::Config::default());
    round_trip(&fig13::Config::default());
    round_trip(&fig14::Config::default());
    round_trip(&fault_sweep::Config::default());
}

#[test]
fn fault_plan_round_trips() {
    use echo_sim::{ChannelFault, FaultKind, FaultPlan};
    round_trip(&FaultPlan::none());
    round_trip(&FaultPlan::uniform(FaultKind::Clipping, 0.7, &[1, 4], 9));
    let mixed = FaultPlan::new(3)
        .with_fault(0, ChannelFault::Dead)
        .with_fault(2, ChannelFault::GainDrift { db: -12.0 })
        .with_fault(5, ChannelFault::ClockSkew { ppm: 900.0 });
    round_trip(&mixed);
    // A spec carrying a plan must survive the artefact round trip too.
    let mut spec = CaptureSpec::default_lab(4);
    spec.faults = FaultPlan::uniform(FaultKind::BurstInterference, 1.0, &[2], 5);
    round_trip(&spec);
}

#[test]
fn confusion_matrix_round_trips_with_decisions() {
    let mut cm = ConfusionMatrix::new(&[1, 2, 3]);
    cm.record(1, AuthDecision::Accepted { user_id: 1 });
    cm.record(2, AuthDecision::Accepted { user_id: 3 });
    cm.record(SPOOFER, AuthDecision::Rejected);
    round_trip(&cm);
    round_trip(&cm.metrics());
}

#[test]
fn metrics_round_trip() {
    let m = AuthMetrics {
        recall: 0.9,
        precision: 0.95,
        accuracy: 0.92,
        f_measure: 0.925,
    };
    round_trip(&m);
}
