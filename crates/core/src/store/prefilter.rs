//! Coarse centroid prefilter: an IVF-style inverted index over per-user
//! embedding centroids.
//!
//! Scoring every enrolled user's SVDD gates is linear in population;
//! the prefilter cuts that to a candidate set. Users are bucketed into
//! `≈√n` cells by nearest cell centroid; a query probes the `nprobe`
//! nearest cells and ranks only their members by squared distance,
//! using the `echo_dsp::simd::sqdist_f32` kernel (bit-identical across
//! SIMD paths, so candidate sets — and therefore decisions — are
//! deterministic on any machine).
//!
//! Cell centroids are a deterministic strided sample of the user
//! centroids rather than k-means: build is O(n·√n) with zero iteration
//! count to tune, rebuilds are reproducible byte-for-byte, and for the
//! well-separated speaker embeddings this store holds, recall at the
//! default `nprobe = √cells` is indistinguishable from exhaustive
//! search (the parity suite in `tests/store_parity.rs` pins this).
//!
//! Everything here is expressed over flat slices ([`candidates_in`]);
//! [`CoarseIndex`] is the owned wrapper the in-memory store and the
//! shard writer use. The one deliberately non-zero-copy piece is the
//! [`build_scan`] array — a cell-ordered copy of the member centroids
//! (`n × dim` f32, a few percent of a shard) that every reader rebuilds
//! at open so a query streams each probed cell instead of taking a
//! cache miss per member.

use super::StoreError;
use echo_dsp::simd::sqdist_f32_with;
use std::collections::BinaryHeap;

/// Upper bound on cells: past this, probing √cells of them stops
/// shrinking the scan set meaningfully and cell-selection overhead
/// dominates.
pub const MAX_CELLS: usize = 4096;

/// Number of cells for a population of `n` users: `⌈√n⌉` clamped to
/// `[1, MAX_CELLS]`.
pub fn n_cells_for(n: usize) -> usize {
    isqrt_ceil(n).clamp(1, MAX_CELLS)
}

/// Cells probed per query for an index with `n_cells` cells:
/// `⌈√n_cells⌉`, at least 1.
pub fn nprobe_for(n_cells: usize) -> usize {
    isqrt_ceil(n_cells).clamp(1, n_cells.max(1))
}

fn isqrt_ceil(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while r * r < n {
        r += 1;
    }
    while r > 0 && (r - 1) * (r - 1) >= n {
        r -= 1;
    }
    r
}

/// An owned coarse index: cell centroids plus a CSR map from cell to
/// member user indices, and a cell-ordered copy of the member centroids
/// so a query scans each probed cell sequentially.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseIndex {
    dim: usize,
    /// Flat `n_cells × dim` cell centroids.
    cells: Vec<f32>,
    /// CSR offsets, `n_cells + 1` entries.
    offsets: Vec<u32>,
    /// CSR payload: user indices grouped by cell, `n` entries.
    members: Vec<u32>,
    /// `n × dim` member centroids permuted into CSR order (see
    /// [`build_scan`]) — derived, never serialized.
    scan: Vec<f32>,
}

impl CoarseIndex {
    /// Builds the index over flat `n × dim` user centroids.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `centroids.len()` is not a multiple of
    /// `dim`.
    pub fn build(centroids: &[f32], dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(centroids.len() % dim, 0, "centroids not a multiple of dim");
        let n = centroids.len() / dim;
        let n_cells = n_cells_for(n);
        if n == 0 {
            return CoarseIndex {
                dim,
                cells: Vec::new(),
                offsets: vec![0],
                members: Vec::new(),
                scan: Vec::new(),
            };
        }
        // Deterministic strided sample of user centroids as cell seeds.
        let mut cells = Vec::with_capacity(n_cells * dim);
        for j in 0..n_cells {
            let src = j * n / n_cells;
            cells.extend_from_slice(&centroids[src * dim..(src + 1) * dim]);
        }
        // Assign each user to its nearest cell (ties → lower cell).
        let path = echo_dsp::simd::active();
        let mut assignment = vec![0u32; n];
        let mut counts = vec![0u32; n_cells];
        for (i, a) in assignment.iter_mut().enumerate() {
            let c = &centroids[i * dim..(i + 1) * dim];
            let mut best = 0usize;
            let mut best_d2 = f32::INFINITY;
            for (j, cell) in cells.chunks_exact(dim).enumerate() {
                let d2 = sqdist_f32_with(path, cell, c);
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = j;
                }
            }
            *a = best as u32;
            counts[best] += 1;
        }
        // CSR: prefix-sum offsets, then scatter members in user order
        // (so each cell's member list is ascending).
        let mut offsets = vec![0u32; n_cells + 1];
        for j in 0..n_cells {
            offsets[j + 1] = offsets[j] + counts[j];
        }
        let mut cursor: Vec<u32> = offsets[..n_cells].to_vec();
        let mut members = vec![0u32; n];
        for (i, &cell) in assignment.iter().enumerate() {
            members[cursor[cell as usize] as usize] = i as u32;
            cursor[cell as usize] += 1;
        }
        let scan = build_scan(dim, &members, centroids);
        CoarseIndex {
            dim,
            cells,
            offsets,
            members,
            scan,
        }
    }

    /// Reassembles an index from decoded parts, validating the CSR
    /// invariants (the heap reader's entry point). `centroids` are the
    /// user-ordered `n × dim` centroids the scan copy is rebuilt from.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when shapes disagree, offsets are
    /// non-monotone, or a member index is out of range.
    pub fn from_parts(
        dim: usize,
        cells: Vec<f32>,
        offsets: Vec<u32>,
        members: Vec<u32>,
        centroids: &[f32],
    ) -> Result<Self, StoreError> {
        if dim == 0 || !centroids.len().is_multiple_of(dim) {
            return Err(StoreError::Corrupt {
                offset: 0,
                what: "centroids not a multiple of dim",
            });
        }
        validate_csr(dim, &cells, &offsets, &members, centroids.len() / dim)?;
        let scan = build_scan(dim, &members, centroids);
        Ok(CoarseIndex {
            dim,
            cells,
            offsets,
            members,
            scan,
        })
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Flat cell centroids (`n_cells × dim`).
    pub fn cells(&self) -> &[f32] {
        &self.cells
    }

    /// CSR offsets (`n_cells + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// CSR member payload (`n`).
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Top-`k` user indices for `probe`, ordered by `(d2, index)`
    /// ascending — see [`candidates_in`].
    pub fn candidates(&self, probe: &[f32], k: usize) -> Vec<(u32, f32)> {
        candidates_in(
            self.dim,
            &self.cells,
            &self.offsets,
            &self.members,
            &self.scan,
            probe,
            k,
        )
    }
}

/// Permutes user-ordered centroids into CSR member order: the centroid
/// of `members[pos]` lands at `scan[pos·dim..]`, so scanning one cell's
/// members reads `scan` sequentially instead of hopping through the
/// user-ordered array — the difference between a cache miss per member
/// and streaming loads, which is what keeps candidate lookup sub-ms at
/// a million users. Purely derived data: rebuilt from `(members,
/// centroids)` wherever the index is constructed, never serialized.
pub fn build_scan(dim: usize, members: &[u32], centroids: &[f32]) -> Vec<f32> {
    let mut scan = Vec::with_capacity(members.len() * dim);
    for &m in members {
        scan.extend_from_slice(&centroids[m as usize * dim..(m as usize + 1) * dim]);
    }
    scan
}

/// Validates the CSR shape shared by both readers.
///
/// # Errors
///
/// [`StoreError::Corrupt`] naming the violated invariant.
pub fn validate_csr(
    dim: usize,
    cells: &[f32],
    offsets: &[u32],
    members: &[u32],
    n_users: usize,
) -> Result<(), StoreError> {
    let corrupt = |what: &'static str| StoreError::Corrupt { offset: 0, what };
    if dim == 0 || !cells.len().is_multiple_of(dim) {
        return Err(corrupt("cell centroids not a multiple of dim"));
    }
    let n_cells = cells.len() / dim;
    if offsets.len() != n_cells + 1 {
        return Err(corrupt("cell offset table has wrong length"));
    }
    if offsets.first() != Some(&0) {
        return Err(corrupt("cell offsets do not start at zero"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("cell offsets are not monotone"));
    }
    if *offsets.last().unwrap() as usize != members.len() || members.len() != n_users {
        return Err(corrupt("cell member count disagrees with user count"));
    }
    if members.iter().any(|&m| m as usize >= n_users) {
        return Err(corrupt("cell member index out of range"));
    }
    Ok(())
}

/// Max-heap entry ordered by `(d2, index)` — kept small so the top-k
/// selection never sorts the whole scan set.
#[derive(PartialEq)]
struct HeapCand(f32, u32);

impl Eq for HeapCand {}

impl Ord for HeapCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for HeapCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Queries a coarse index expressed as flat slices: probe the
/// [`nprobe_for`] nearest cells and return the `k` member indices with
/// the smallest squared centroid distance, ordered by `(d2, index)`
/// ascending. `scan` is the CSR-ordered centroid copy from
/// [`build_scan`] — member `pos`'s centroid at `scan[pos·dim..]`, so
/// each probed cell is one sequential sweep. Fully deterministic:
/// selection is by the `(d2, index)` total order (independent of scan
/// order), distance ties break to the lower index, and the distance
/// kernel is bit-identical across SIMD paths.
pub fn candidates_in(
    dim: usize,
    cells: &[f32],
    offsets: &[u32],
    members: &[u32],
    scan: &[f32],
    probe: &[f32],
    k: usize,
) -> Vec<(u32, f32)> {
    let n_cells = cells.len() / dim.max(1);
    if k == 0 || n_cells == 0 || members.is_empty() || probe.len() != dim {
        return Vec::new();
    }
    // Resolve the SIMD path once per query, not per member.
    let path = echo_dsp::simd::active();
    // Rank cells by probe distance; n_cells ≤ 4096 so a full sort is
    // cheap and keeps the probe order fully deterministic.
    let mut cell_rank: Vec<(f32, u32)> = cells
        .chunks_exact(dim)
        .enumerate()
        .map(|(j, cell)| (sqdist_f32_with(path, cell, probe), j as u32))
        .collect();
    cell_rank.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let nprobe = nprobe_for(n_cells).min(n_cells);

    // Bounded max-heap selection over the probed cells' members. Most
    // members lose to the current k-th best, so the common case is one
    // distance + one comparison — the heap only churns on improvements.
    let mut heap: BinaryHeap<HeapCand> = BinaryHeap::with_capacity(k + 1);
    for &(_, cell) in cell_rank.iter().take(nprobe) {
        let lo = offsets[cell as usize] as usize;
        let hi = offsets[cell as usize + 1] as usize;
        for pos in lo..hi {
            let c = &scan[pos * dim..(pos + 1) * dim];
            let d2 = sqdist_f32_with(path, c, probe);
            let cand = HeapCand(d2, members[pos]);
            if heap.len() < k {
                heap.push(cand);
            } else if heap.peek().is_some_and(|worst| cand < *worst) {
                heap.pop();
                heap.push(cand);
            }
        }
    }
    let mut out: Vec<(u32, f32)> = heap.into_iter().map(|HeapCand(d2, m)| (m, d2)).collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_centroids(n: usize, dim: usize) -> Vec<f32> {
        let mut v = Vec::with_capacity(n * dim);
        for i in 0..n {
            for d in 0..dim {
                v.push((i * 10) as f32 + d as f32 * 0.25);
            }
        }
        v
    }

    #[test]
    fn matches_brute_force_top_k() {
        // Probe near user 3: the prefilter's top-4 must equal the
        // brute-force top-4 (users 3, 4, 2, 5 by distance).
        let dim = 3;
        let centroids = grid_centroids(9, dim);
        let index = CoarseIndex::build(&centroids, dim);
        let probe = vec![31.0, 31.25, 31.5];
        let got = index.candidates(&probe, 4);
        let ids: Vec<u32> = got.iter().map(|&(m, _)| m).collect();
        assert_eq!(ids, vec![3, 4, 2, 5]);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "sorted by d2");
    }

    #[test]
    fn self_centroid_is_always_recalled() {
        // A probe sitting exactly on a user's centroid must surface
        // that user: its cell is the nearest cell by construction.
        let dim = 4;
        let n = 500;
        let centroids = grid_centroids(n, dim);
        let index = CoarseIndex::build(&centroids, dim);
        for i in (0..n).step_by(17) {
            let probe = centroids[i * dim..(i + 1) * dim].to_vec();
            let got = index.candidates(&probe, 1);
            assert_eq!(got[0].0, i as u32, "user {i} missed by prefilter");
            assert_eq!(got[0].1, 0.0);
        }
    }

    #[test]
    fn build_is_deterministic_and_csr_is_valid() {
        let centroids = grid_centroids(123, 2);
        let a = CoarseIndex::build(&centroids, 2);
        let b = CoarseIndex::build(&centroids, 2);
        assert_eq!(a, b);
        validate_csr(2, a.cells(), a.offsets(), a.members(), 123).unwrap();
        assert_eq!(a.n_cells(), n_cells_for(123));
        // Every user appears exactly once.
        let mut seen: Vec<u32> = a.members().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..123).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let index = CoarseIndex::build(&[], 5);
        assert!(index.candidates(&[0.0; 5], 3).is_empty());
        let one = CoarseIndex::build(&[1.0, 2.0], 2);
        assert_eq!(one.candidates(&[1.0, 2.0], 8), vec![(0, 0.0)]);
        assert!(one.candidates(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn from_parts_rejects_broken_csr() {
        let centroids = grid_centroids(10, 2);
        let idx = CoarseIndex::build(&centroids, 2);
        let bad = CoarseIndex::from_parts(
            2,
            idx.cells().to_vec(),
            idx.offsets().to_vec(),
            vec![99; idx.members().len()],
            &centroids,
        );
        assert!(matches!(bad, Err(StoreError::Corrupt { .. })));
        let mut offs = idx.offsets().to_vec();
        offs[1] += 100;
        let bad = CoarseIndex::from_parts(
            2,
            idx.cells().to_vec(),
            offs,
            idx.members().to_vec(),
            &centroids,
        );
        assert!(matches!(bad, Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn sizing_helpers() {
        assert_eq!(n_cells_for(0), 1);
        assert_eq!(n_cells_for(1), 1);
        assert_eq!(n_cells_for(100), 10);
        assert_eq!(n_cells_for(1_000_000), 1000);
        assert_eq!(n_cells_for(100_000_000), MAX_CELLS);
        assert_eq!(nprobe_for(1), 1);
        assert_eq!(nprobe_for(1000), 32);
    }
}
