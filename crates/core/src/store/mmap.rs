//! Read-only memory mapping without a libc crate dependency.
//!
//! The workspace is dependency-free, so the mmap-backed reader declares
//! the two syscall wrappers it needs (`mmap`/`munmap`) directly against
//! the platform C library. The map is `PROT_READ | MAP_PRIVATE`: the
//! kernel pages template data in on demand and shares clean pages
//! across processes, which is what makes a million-user shard open in
//! microseconds instead of reading hundreds of megabytes up front.
//!
//! On non-unix or big-endian targets [`mmap_available`] is `false` and
//! the portable heap reader ([`super::shard::HeapShard`]) is used
//! instead; nothing in this module is compiled where it cannot work.

#[cfg(unix)]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;
    use std::ptr::NonNull;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        // `off_t` is 64-bit on every tier-1 unix target we build for.
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A read-only, privately mapped view of an entire file.
    #[derive(Debug)]
    pub struct MmapRegion {
        ptr: NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is read-only for its whole lifetime; the
    // kernel keeps the pages valid until `munmap` in `Drop`, so shared
    // references to the bytes are sound from any thread.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps the whole of `file` read-only.
        ///
        /// # Errors
        ///
        /// Any metadata or `mmap(2)` failure, and `InvalidInput` for an
        /// empty file (zero-length maps are undefined per POSIX).
        pub fn map(file: &File) -> io::Result<Self> {
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            // SAFETY: requesting a fresh read-only private mapping of a
            // file descriptor we own; the kernel picks the address.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            let ptr = NonNull::new(ptr as *mut u8)
                .ok_or_else(|| io::Error::other("mmap returned null"))?;
            Ok(MmapRegion { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` spans exactly `len` readable bytes until
            // `Drop` unmaps them.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly what `map` mapped; errors are
            // unreachable for a valid region and ignored in Drop.
            unsafe {
                munmap(self.ptr.as_ptr() as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(unix)]
pub use imp::MmapRegion;

/// `true` when the mmap-backed zero-copy reader can be used on this
/// target: it needs unix `mmap(2)` and a little-endian CPU (the wire
/// format is little-endian and the mapped reader casts in place).
pub fn mmap_available() -> bool {
    cfg!(unix) && cfg!(target_endian = "little")
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join("echoimage-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("map-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let region = MmapRegion::map(&file).unwrap();
        assert_eq!(region.bytes(), &payload[..]);
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_rejected() {
        let dir = std::env::temp_dir().join("echoimage-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("empty-{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(MmapRegion::map(&file).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
