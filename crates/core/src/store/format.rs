//! Shard wire format v1: layout constants, checksum, and the
//! bounds/alignment-checked primitives both readers share.
//!
//! A shard file is little-endian throughout:
//!
//! ```text
//! offset  field
//! 0       magic           b"ECHOSHD1"
//! 8       version         u32  (= 1)
//! 12      dim             u32  feature dimensionality
//! 16      n_users         u32  user records in this shard
//! 20      n_cells         u32  coarse-index cells
//! 24      scaler_off      u64  → f64 means[dim] ++ f64 stds[dim]
//! 32      ids_off         u64  → u64 ids[n_users], strictly ascending
//! 40      centroids_off   u64  → f32 centroids[n_users × dim]
//! 48      cell_cent_off   u64  → f32 cell_centroids[n_cells × dim]
//! 56      cell_offs_off   u64  → u32 cell_offsets[n_cells + 1] (CSR)
//! 64      members_off     u64  → u32 members[n_users] (CSR payload)
//! 72      rec_tab_off     u64  → u64 record_offsets[n_users + 1]
//! 80      gates_off       u64  → per-user gate records (see below)
//! 88      file_len        u64  total file length including trailer
//! 96      … sections, each 8-byte aligned …
//! file_len-8  checksum    u64  FNV-1a over bytes[0 .. file_len-8]
//! ```
//!
//! Each user's gate record (at `record_offsets[i]`, ending exactly at
//! `record_offsets[i + 1]`):
//!
//! ```text
//! u32 n_gates, u32 pad(0)
//! per gate: u32 n_sv, u32 pad(0),
//!           f64 gamma, f64 rho, f64 threshold,
//!           f64 coefficients[n_sv], f64 support[n_sv × dim]
//! ```
//!
//! Every section offset and record boundary is a multiple of 8, so the
//! mmap reader can cast in place; [`cast_f64`] and friends verify both
//! bounds and alignment and return typed [`StoreError`]s with the
//! offending byte offset.

use super::StoreError;

/// File magic — "ECHO SHarD v1".
pub const MAGIC: [u8; 8] = *b"ECHOSHD1";
/// The format version this build reads and writes.
pub const VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 96;
/// Trailer (checksum) length in bytes.
pub const TRAILER_LEN: usize = 8;
/// Smallest possible well-formed shard (empty sections still need a
/// header, a one-entry record table and a checksum).
pub const MIN_FILE_LEN: usize = HEADER_LEN + 8 + TRAILER_LEN;

/// The parsed fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Feature dimensionality.
    pub dim: u32,
    /// User records in this shard.
    pub n_users: u32,
    /// Coarse-index cells.
    pub n_cells: u32,
    /// Byte offset of the scaler section.
    pub scaler_off: u64,
    /// Byte offset of the sorted user-id section.
    pub ids_off: u64,
    /// Byte offset of the quantized centroid section.
    pub centroids_off: u64,
    /// Byte offset of the coarse-index cell centroids.
    pub cell_cent_off: u64,
    /// Byte offset of the coarse-index CSR offsets.
    pub cell_offs_off: u64,
    /// Byte offset of the coarse-index CSR members.
    pub members_off: u64,
    /// Byte offset of the per-user record table.
    pub rec_tab_off: u64,
    /// Byte offset of the gate records.
    pub gates_off: u64,
    /// Total file length the header promises.
    pub file_len: u64,
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free, and plenty to
/// catch torn writes and bit rot (this is an integrity check, not an
/// authenticity one).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses and validates the fixed header and trailer of a shard image:
/// magic, version, promised length vs actual, and the body checksum.
///
/// # Errors
///
/// [`StoreError::Truncated`], [`StoreError::BadMagic`],
/// [`StoreError::BadVersion`], [`StoreError::Corrupt`] (length
/// mismatch) or [`StoreError::ChecksumMismatch`].
pub fn parse_header(bytes: &[u8]) -> Result<Header, StoreError> {
    if bytes.len() < MIN_FILE_LEN {
        return Err(StoreError::Truncated {
            offset: 0,
            needed: MIN_FILE_LEN as u64,
            file_len: bytes.len() as u64,
            what: "shard header",
        });
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic { offset: 0 });
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let version = u32_at(8);
    if version != VERSION {
        return Err(StoreError::BadVersion {
            offset: 8,
            found: version,
            supported: VERSION,
        });
    }
    let header = Header {
        dim: u32_at(12),
        n_users: u32_at(16),
        n_cells: u32_at(20),
        scaler_off: u64_at(24),
        ids_off: u64_at(32),
        centroids_off: u64_at(40),
        cell_cent_off: u64_at(48),
        cell_offs_off: u64_at(56),
        members_off: u64_at(64),
        rec_tab_off: u64_at(72),
        gates_off: u64_at(80),
        file_len: u64_at(88),
    };
    if header.file_len != bytes.len() as u64 {
        if header.file_len > bytes.len() as u64 {
            return Err(StoreError::Truncated {
                offset: bytes.len() as u64,
                needed: header.file_len - bytes.len() as u64,
                file_len: bytes.len() as u64,
                what: "shard body (header promises a longer file)",
            });
        }
        return Err(StoreError::Corrupt {
            offset: 88,
            what: "header file_len shorter than the actual file",
        });
    }
    if header.dim == 0 {
        return Err(StoreError::Corrupt {
            offset: 12,
            what: "zero feature dimensionality",
        });
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let expected = fnv1a64(body);
    let found = u64::from_le_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
    if expected != found {
        return Err(StoreError::ChecksumMismatch { expected, found });
    }
    Ok(header)
}

macro_rules! cast_fn {
    ($name:ident, $ty:ty, $label:literal) => {
        /// Reinterprets `n` little-endian elements at `off` as a typed
        /// slice without copying. Bounds and alignment are verified;
        /// only valid on little-endian targets (the reader selection in
        /// [`super::shard`] guarantees this).
        ///
        /// # Errors
        ///
        /// [`StoreError::Truncated`] or [`StoreError::Misaligned`],
        /// both carrying `off`.
        pub fn $name<'a>(
            bytes: &'a [u8],
            off: usize,
            n: usize,
            what: &'static str,
        ) -> Result<&'a [$ty], StoreError> {
            let size = std::mem::size_of::<$ty>();
            let needed = n.checked_mul(size).ok_or(StoreError::Corrupt {
                offset: off as u64,
                what: "section length overflows",
            })?;
            if off > bytes.len() || needed > bytes.len() - off {
                return Err(StoreError::Truncated {
                    offset: off as u64,
                    needed: needed as u64,
                    file_len: bytes.len() as u64,
                    what,
                });
            }
            let ptr = bytes[off..].as_ptr();
            let align = std::mem::align_of::<$ty>();
            if ptr as usize % align != 0 {
                return Err(StoreError::Misaligned {
                    offset: off as u64,
                    align: align as u32,
                    what,
                });
            }
            // SAFETY: bounds and alignment checked above; the target is
            // little-endian so the byte patterns are valid values of
            // the primitive (every bit pattern is valid for these
            // types); lifetime is tied to `bytes`.
            Ok(unsafe { std::slice::from_raw_parts(ptr as *const $ty, n) })
        }
    };
}

cast_fn!(cast_f64, f64, "f64");
cast_fn!(cast_f32, f32, "f32");
cast_fn!(cast_u64, u64, "u64");
cast_fn!(cast_u32, u32, "u32");

/// A decoding cursor over a shard image for the portable heap reader —
/// every read is bounds-checked and decodes via `from_le_bytes`, so it
/// works on any endianness.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor positioned at `off`.
    pub fn at(bytes: &'a [u8], off: usize) -> Self {
        Cursor { bytes, pos: off }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        if n > self.bytes.len() - self.pos.min(self.bytes.len()) {
            return Err(StoreError::Truncated {
                offset: self.pos as u64,
                needed: n as u64,
                file_len: self.bytes.len() as u64,
                what,
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at the cursor position.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads one `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at the cursor position.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads `n` consecutive `f64`s into a vector.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at the cursor position.
    pub fn f64s(&mut self, n: usize, what: &'static str) -> Result<Vec<f64>, StoreError> {
        let raw = self.take(n * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` consecutive `f32`s into a vector.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at the cursor position.
    pub fn f32s(&mut self, n: usize, what: &'static str) -> Result<Vec<f32>, StoreError> {
        let raw = self.take(n * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` consecutive `u64`s into a vector.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at the cursor position.
    pub fn u64s(&mut self, n: usize, what: &'static str) -> Result<Vec<u64>, StoreError> {
        let raw = self.take(n * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` consecutive `u32`s into a vector.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at the cursor position.
    pub fn u32s(&mut self, n: usize, what: &'static str) -> Result<Vec<u32>, StoreError> {
        let raw = self.take(n * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// An append-only little-endian buffer that tracks 8-byte section
/// alignment — the writer half of the format.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far (the next append offset).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Zero-pads to the next 8-byte boundary and returns the aligned
    /// offset — called before every section.
    pub fn align8(&mut self) -> usize {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
        self.buf.len()
    }

    /// Patches a previously written `u64` in place (header back-fill).
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the buffer.
    pub fn patch_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Patches a previously written `u32` in place (header back-fill).
    ///
    /// # Panics
    ///
    /// Panics if `off + 4` exceeds the buffer.
    pub fn patch_u32(&mut self, off: usize, v: u32) {
        self.buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Consumes the writer, appending the FNV-1a trailer over everything
    /// written so far.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values for the canonical FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_aligns_and_patches() {
        let mut w = Writer::new();
        w.put_u32(7);
        assert_eq!(w.align8(), 8);
        w.put_u64(0);
        w.patch_u64(8, 42);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 16 + 8);
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 42);
        let sum = u64::from_le_bytes(bytes[16..].try_into().unwrap());
        assert_eq!(sum, fnv1a64(&bytes[..16]));
    }

    #[test]
    fn cursor_reports_truncation_with_offset() {
        let bytes = [1u8, 2, 3];
        let mut c = Cursor::at(&bytes, 0);
        let err = c.u64("test field").unwrap_err();
        assert_eq!(
            err,
            StoreError::Truncated {
                offset: 0,
                needed: 8,
                file_len: 3,
                what: "test field",
            }
        );
    }

    #[test]
    fn cast_checks_bounds() {
        let bytes = vec![0u8; 64];
        assert!(cast_f64(&bytes, 0, 8, "x").is_ok());
        let err = cast_f64(&bytes, 0, 9, "x").unwrap_err();
        assert!(matches!(err, StoreError::Truncated { needed: 72, .. }));
        let err = cast_u32(&bytes, 60, 2, "x").unwrap_err();
        assert!(matches!(err, StoreError::Truncated { offset: 60, .. }));
    }

    #[test]
    fn parse_header_rejects_garbage() {
        assert!(matches!(
            parse_header(&[0u8; 10]).unwrap_err(),
            StoreError::Truncated { .. }
        ));
        let mut junk = vec![0u8; MIN_FILE_LEN];
        junk[..8].copy_from_slice(b"NOTSHARD");
        assert_eq!(
            parse_header(&junk).unwrap_err(),
            StoreError::BadMagic { offset: 0 }
        );
    }
}
