//! Template store: identification at millions-of-users scale.
//!
//! The [`crate::auth::Authenticator`] keeps every enrolled user's SVDD
//! gate in heap memory and scores probes against all of them — linear
//! in population, fine for the paper's ~20 subjects, fatal for the
//! roadmap's millions. This module replaces that in-memory model map on
//! the **identification** path with a trait-based [`TemplateStore`]:
//!
//! 1. **Compact binary templates** — per user, a quantized (`f32`)
//!    embedding centroid plus the exact (`f64`) SVDD support vectors,
//!    coefficients, ρ and calibrated threshold — written to versioned,
//!    checksummed shard files ([`shard`], [`format`]) and served via
//!    memory-mapped zero-copy reads ([`mmap`]) with a portable
//!    heap-decoding fallback reader.
//! 2. **A coarse centroid prefilter** ([`prefilter`]) — an IVF-style
//!    index over per-user centroids queried with the
//!    `echo_dsp::simd::sqdist_f32` kernel — prunes the population to a
//!    top-K candidate set before the expensive per-user SVDD vote. An
//!    exhaustive-scan oracle ([`IdentifyConfig::exhaustive`]) proves
//!    decision parity.
//! 3. **Epoch-style snapshot reloads** ([`snapshot`]) — re-enrolment
//!    builds a new snapshot off to the side and publishes it with an
//!    `Arc` swap; readers in flight keep their snapshot, steady-state
//!    readers revalidate a thread-local cache against an epoch counter
//!    and touch no lock.
//!
//! # Exactness contract
//!
//! Quantization touches **only** the prefilter: centroids are stored as
//! `f32` and used solely to rank candidates. Gate scoring always runs
//! on the bit-preserved `f64` support vectors with the same arithmetic
//! as [`echo_ml::OneClassSvm::decision`], so a template that round-trips
//! through serialization and mmap yields margins — and therefore
//! decisions — bit-identical to the in-memory path. The proptest suite
//! pins this.

pub mod format;
pub mod mmap;
pub mod prefilter;
pub mod shard;
pub mod snapshot;
pub mod template;

pub use prefilter::CoarseIndex;
pub use shard::{ReaderMode, Shard, ShardWriter, READER_ENV};
pub use snapshot::{ShardStore, StoreHandle};
pub use template::{GateTemplate, MemoryStore, TemplateBuilder, UserTemplate};

use crate::auth::{AuthAttempt, AuthDecision};
use crate::error::EchoImageError;
use echo_obs::{AuthAudit, AuthVerdict, RejectKind, TraceCtx};
use std::fmt;
use std::time::Instant;

/// Candidate-lookup latency histogram (per beep): the time the coarse
/// prefilter takes to produce the top-K candidate set.
pub const LOOKUP_HISTOGRAM: &str = "store.lookup";
/// Gauge holding the candidate-set size of the most recent lookup.
pub const CANDIDATES_GAUGE: &str = "store.candidates";
/// Beeps where the prefiltered candidate set contained an accepting
/// user. A pure function of probe and store contents — bit-identical
/// across `ECHOIMAGE_THREADS`.
pub const PREFILTER_HIT: &str = "store.prefilter.hit";
/// Beeps where no prefiltered candidate accepted (spoofer probe, or a
/// legitimate user pruned by the prefilter).
pub const PREFILTER_MISS: &str = "store.prefilter.miss";

/// Typed errors from the template store, carrying byte-offset context
/// wherever a shard file is at fault.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// An OS-level file operation failed.
    Io {
        /// Path of the file being read or written.
        path: String,
        /// The OS error, stringified (kept `Clone`/`PartialEq`).
        message: String,
    },
    /// The file does not start with the shard magic.
    BadMagic {
        /// Byte offset of the magic (always 0; spelled for uniformity).
        offset: u64,
    },
    /// The shard format version is not supported by this build.
    BadVersion {
        /// Byte offset of the version field.
        offset: u64,
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file ends before a section or field it promises.
    Truncated {
        /// Byte offset where the missing data was expected.
        offset: u64,
        /// Bytes needed at that offset.
        needed: u64,
        /// Actual file length.
        file_len: u64,
        /// Which structure was being read.
        what: &'static str,
    },
    /// A section offset violates the alignment its element type needs.
    Misaligned {
        /// The offending byte offset.
        offset: u64,
        /// Required alignment in bytes.
        align: u32,
        /// Which structure was being read.
        what: &'static str,
    },
    /// The trailing FNV-1a checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recomputed over the file body.
        expected: u64,
        /// Checksum stored in the trailer.
        found: u64,
    },
    /// An internal invariant of the format is violated (non-monotone
    /// record table, out-of-range member index, …).
    Corrupt {
        /// Byte offset of the offending structure.
        offset: u64,
        /// What is wrong.
        what: &'static str,
    },
    /// A template cannot be represented in the shard format.
    InvalidTemplate(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "shard I/O failed on {path}: {message}")
            }
            StoreError::BadMagic { offset } => {
                write!(f, "not a template shard (bad magic at byte {offset})")
            }
            StoreError::BadVersion {
                offset,
                found,
                supported,
            } => write!(
                f,
                "unsupported shard version {found} at byte {offset} (this build supports {supported})"
            ),
            StoreError::Truncated {
                offset,
                needed,
                file_len,
                what,
            } => write!(
                f,
                "shard truncated reading {what}: need {needed} bytes at offset {offset}, file is {file_len} bytes"
            ),
            StoreError::Misaligned {
                offset,
                align,
                what,
            } => write!(
                f,
                "misaligned {what} at byte {offset} (requires {align}-byte alignment)"
            ),
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "shard checksum mismatch: file body hashes to {expected:#018x}, trailer says {found:#018x}"
            ),
            StoreError::Corrupt { offset, what } => {
                write!(f, "corrupt shard at byte {offset}: {what}")
            }
            StoreError::InvalidTemplate(what) => {
                write!(f, "template not representable: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A prefiltered identification candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate's enrolled user id.
    pub user_id: u64,
    /// Quantized squared distance from the probe to the candidate's
    /// centroid (the prefilter's ranking key).
    pub d2: f32,
}

/// Read interface every template store backend implements — the
/// in-memory [`MemoryStore`], the mmap-backed [`ShardStore`], and
/// whatever future backend replaces them. Identification
/// ([`identify_traced`]) is generic over this trait, so the prefiltered
/// path and the exhaustive oracle run the same decision code against
/// any backend.
pub trait TemplateStore: Send + Sync {
    /// Feature dimensionality of every template in the store.
    fn dim(&self) -> usize;

    /// Number of distinct enrolled users (newest shard wins when a user
    /// was re-enrolled).
    fn user_count(&self) -> usize;

    /// Per-feature means of the frozen scaler.
    fn scaler_means(&self) -> &[f64];

    /// Per-feature divisors of the frozen scaler.
    fn scaler_stds(&self) -> &[f64];

    /// The top-`k` candidate users for a scaled, quantized probe,
    /// ordered by `(d2, user_id)` ascending. Deterministic for a given
    /// store and probe.
    fn candidates(&self, probe: &[f32], k: usize) -> Vec<Candidate>;

    /// The user's gate margin (`max` over their gates of
    /// `decision − threshold`) on a scaled probe, or `None` when the
    /// user is not enrolled. Bit-identical to the in-memory
    /// [`echo_ml::OneClassSvm::decision`] arithmetic.
    fn gate_margin(&self, user_id: u64, x: &[f64]) -> Option<f64>;

    /// All distinct enrolled user ids, ascending.
    fn user_ids(&self) -> Vec<u64>;
}

/// Knobs for one identification call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentifyConfig {
    /// Candidate-set size the prefilter prunes to per beep.
    pub top_k: usize,
    /// Bypass the prefilter and score every enrolled user — the oracle
    /// the parity suites compare against.
    pub exhaustive: bool,
}

impl Default for IdentifyConfig {
    fn default() -> Self {
        IdentifyConfig {
            top_k: 16,
            exhaustive: false,
        }
    }
}

/// Identifies a probe train against a template store under a fresh
/// root span (see [`identify_traced`]).
///
/// # Errors
///
/// See [`identify_traced`].
pub fn identify(
    store: &dyn TemplateStore,
    features: &[Vec<f64>],
    config: &IdentifyConfig,
) -> Result<AuthDecision, EchoImageError> {
    let root = echo_obs::root_span("store.identify");
    identify_traced(store, root.ctx(), features, config, AuthAttempt::default())
}

/// Identifies a probe train (one feature vector per beep) against a
/// template store: per beep, the probe is standardised with the store's
/// frozen scaler, the coarse prefilter prunes the population to
/// [`IdentifyConfig::top_k`] candidates, the best-margin candidate with
/// a non-negative margin claims the beep, and a strict majority of
/// beeps must agree on one user — mirroring the `Authenticator`'s vote.
/// Records one [`AuthAudit`] and the `store.*` metrics; all counters
/// and the audit are bit-identical across `ECHOIMAGE_THREADS` and SIMD
/// paths.
///
/// With [`IdentifyConfig::exhaustive`] the prefilter is bypassed and
/// every enrolled user is scored — the oracle used to prove prefilter
/// decision parity.
///
/// # Errors
///
/// * [`EchoImageError::NoCaptures`] when `features` is empty.
/// * [`EchoImageError::InvalidParameter`] when a feature vector
///   disagrees with the store's dimensionality, or the store is empty.
///
/// Every error still records an audit with a non-empty reject reason.
pub fn identify_traced(
    store: &dyn TemplateStore,
    ctx: TraceCtx,
    features: &[Vec<f64>],
    config: &IdentifyConfig,
    attempt: AuthAttempt,
) -> Result<AuthDecision, EchoImageError> {
    let mut tspan = ctx.child_at("stage.identify", attempt.retry_index);
    let started = echo_obs::is_enabled().then(Instant::now);
    echo_obs::counter!("store.identify_attempts").inc();
    let beeps = features.len() as u64;
    let reject_audit = |reason: String| AuthAudit {
        trace: ctx.trace_id(),
        tenant: None,
        seq: 0,
        claimed_user: attempt.claimed_user,
        beeps,
        votes: Vec::new(),
        votes_needed: beeps / 2 + 1,
        best_gate_margin: None,
        channels: 0,
        degraded_mask: 0,
        retry_index: attempt.retry_index,
        verdict: AuthVerdict::Rejected,
        reject_kind: RejectKind::CaptureScreen,
        reject_reason: reason,
        spatial_coherence: None,
    };
    let outcome = (|| {
        if features.is_empty() {
            let e = EchoImageError::NoCaptures;
            echo_obs::record_audit(reject_audit(format!(
                "probe rejected before identification: {e}"
            )));
            return Err(e);
        }
        if store.user_count() == 0 {
            let e = EchoImageError::InvalidParameter("template store has no enrolled users");
            echo_obs::record_audit(reject_audit(format!(
                "probe rejected before identification: {e}"
            )));
            return Err(e);
        }
        let dim = store.dim();
        let means = store.scaler_means();
        let stds = store.scaler_stds();
        let exhaustive_ids = config.exhaustive.then(|| store.user_ids());

        let mut counts: Vec<(u64, usize)> = Vec::new();
        let mut best_margin = f64::NEG_INFINITY;
        for f in features {
            if f.len() != dim {
                let e = EchoImageError::InvalidParameter(
                    "feature vector does not match the store dimensionality",
                );
                echo_obs::record_audit(reject_audit(format!("identification error: {e}")));
                return Err(e);
            }
            // Standardise with the frozen scaler — the same arithmetic
            // as `StandardScaler::transform`.
            let x: Vec<f64> = f
                .iter()
                .zip(means.iter().zip(stds.iter()))
                .map(|(&v, (&m, &s))| (v - m) / s)
                .collect();
            let winner = match &exhaustive_ids {
                Some(ids) => {
                    // Oracle: score everyone; ascending id order makes
                    // the "first strictly better" tie-break identical to
                    // the candidate path's.
                    best_of(ids.iter().map(|&id| (id, store.gate_margin(id, &x))))
                }
                None => {
                    let xq: Vec<f32> = x.iter().map(|&v| v as f32).collect();
                    let t0 = echo_obs::is_enabled().then(Instant::now);
                    let cands = store.candidates(&xq, config.top_k);
                    if let Some(t) = t0 {
                        echo_obs::histogram!(LOOKUP_HISTOGRAM)
                            .observe_ns(t.elapsed().as_nanos() as u64);
                    }
                    echo_obs::gauge!(CANDIDATES_GAUGE).set(cands.len() as i64);
                    best_of(
                        cands
                            .iter()
                            .map(|c| (c.user_id, store.gate_margin(c.user_id, &x))),
                    )
                }
            };
            if let Some((id, margin)) = winner {
                best_margin = best_margin.max(margin);
                if margin >= 0.0 {
                    echo_obs::counter!(PREFILTER_HIT).inc();
                    match counts.iter_mut().find(|(cid, _)| *cid == id) {
                        Some((_, n)) => *n += 1,
                        None => counts.push((id, 1)),
                    }
                } else {
                    echo_obs::counter!(PREFILTER_MISS).inc();
                }
            } else {
                echo_obs::counter!(PREFILTER_MISS).inc();
            }
        }
        let decision = counts
            .iter()
            .max_by_key(|(_, n)| *n)
            .filter(|(_, n)| 2 * n > features.len())
            .map(|(id, _)| AuthDecision::Accepted {
                user_id: *id as usize,
            })
            .unwrap_or(AuthDecision::Rejected);
        if decision.is_accepted() {
            echo_obs::counter!("auth.accepted").inc();
        } else {
            echo_obs::counter!("auth.rejected").inc();
        }
        let mut votes: Vec<(u64, u64)> = counts.iter().map(|&(id, n)| (id, n as u64)).collect();
        votes.sort_by_key(|&(id, _)| id);
        let (verdict, kind, reason) = match decision {
            AuthDecision::Accepted { user_id } => (
                AuthVerdict::Accepted {
                    user_id: user_id as u64,
                },
                RejectKind::None,
                String::new(),
            ),
            AuthDecision::Rejected => {
                let (kind, reason) = match counts.iter().max_by_key(|(_, n)| *n) {
                    None => (
                        RejectKind::SpooferGate,
                        "no candidate accepted any beep".to_string(),
                    ),
                    Some((id, n)) => (
                        RejectKind::NoMajority,
                        format!(
                            "no strict majority: best candidate user {id} with {n}/{} accepting beeps",
                            features.len()
                        ),
                    ),
                };
                (AuthVerdict::Rejected, kind, reason)
            }
        };
        echo_obs::record_audit(AuthAudit {
            trace: ctx.trace_id(),
            tenant: None,
            seq: 0,
            claimed_user: attempt.claimed_user,
            beeps,
            votes,
            votes_needed: features.len() as u64 / 2 + 1,
            best_gate_margin: Some(best_margin).filter(|m| m.is_finite()),
            channels: 0,
            degraded_mask: 0,
            retry_index: attempt.retry_index,
            verdict,
            reject_kind: kind,
            reject_reason: reason,
            spatial_coherence: None,
        });
        Ok(decision)
    })();
    if let Some(t0) = started {
        echo_obs::histogram!("stage.identify").observe_ns(t0.elapsed().as_nanos() as u64);
    }
    tspan.attr_bool("accepted", matches!(&outcome, Ok(d) if d.is_accepted()));
    outcome
}

/// The best `(user, margin)` pair under the deterministic tie-break:
/// higher margin wins; equal margins go to the lower user id (the
/// candidate iterators yield ascending-id order on ties, and only a
/// *strictly* better margin displaces the incumbent).
fn best_of(pairs: impl Iterator<Item = (u64, Option<f64>)>) -> Option<(u64, f64)> {
    let mut best: Option<(u64, f64)> = None;
    for (id, margin) in pairs {
        let Some(margin) = margin else { continue };
        match &best {
            Some((bid, bm)) => {
                if margin > *bm || (margin == *bm && id < *bid) {
                    best = Some((id, margin));
                }
            }
            None => best = Some((id, margin)),
        }
    }
    best
}
