//! Compact per-user templates and the in-memory store backend.
//!
//! A [`UserTemplate`] is everything identification needs about one
//! user: a quantized (`f32`) embedding centroid for the coarse
//! prefilter, plus the exact (`f64`) SVDD gate parameters — support
//! vectors, dual coefficients, γ, ρ and the sibling-calibrated
//! threshold. Templates are built once at enrolment by
//! [`TemplateBuilder`] (which reuses the `Authenticator`'s training
//! path, so a template gate is *the same model* the in-memory
//! authenticator would have trained) and shared by `Arc` thereafter:
//! re-enrolling one user into a [`MemoryStore`] copies pointers, never
//! models.

use super::prefilter::CoarseIndex;
use super::{Candidate, StoreError, TemplateStore};
use crate::auth::{train_user_gates, AuthConfig};
use crate::error::EchoImageError;
use echo_ml::{Kernel, StandardScaler};
use std::sync::Arc;

/// One SVDD gate in template form: the flat-serialized equivalent of a
/// trained `OneClassSvm` plus its calibrated accept threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct GateTemplate {
    /// RBF kernel width.
    pub gamma: f64,
    /// Decision offset ρ.
    pub rho: f64,
    /// Calibrated accept threshold (margin = decision − threshold).
    pub threshold: f64,
    /// Dual coefficients αᵢ, one per support vector.
    pub coefficients: Vec<f64>,
    /// Support vectors, flattened row-major (`n_sv × dim`).
    pub support: Vec<f64>,
}

impl GateTemplate {
    /// Extracts a template from a trained model.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] when the model's kernel is not
    /// RBF (the shard format stores γ only).
    pub fn from_svm(svm: &echo_ml::OneClassSvm, threshold: f64) -> Result<Self, StoreError> {
        let Kernel::Rbf { gamma } = svm.kernel() else {
            return Err(StoreError::InvalidTemplate(
                "only RBF-kernel gates are storable",
            ));
        };
        let mut support = Vec::new();
        for sv in svm.support_vectors() {
            support.extend_from_slice(sv);
        }
        Ok(GateTemplate {
            gamma,
            rho: svm.rho(),
            threshold,
            coefficients: svm.coefficients().to_vec(),
            support,
        })
    }

    /// Number of support vectors.
    pub fn n_sv(&self) -> usize {
        self.coefficients.len()
    }

    /// This gate's margin on a scaled probe — see [`gate_margin_flat`].
    pub fn margin(&self, dim: usize, x: &[f64]) -> f64 {
        gate_margin_flat(
            self.gamma,
            self.rho,
            self.threshold,
            &self.coefficients,
            &self.support,
            dim,
            x,
        )
    }
}

/// Evaluates one RBF gate over flat slices: `Σᵢ αᵢ·exp(−γ‖svᵢ − x‖²) −
/// ρ − θ`, accumulated left to right exactly like
/// [`echo_ml::OneClassSvm::decision`] followed by the authenticator's
/// `decision − threshold` — the single evaluator every backend (heap
/// templates and mmap'd shard bytes alike) funnels through, which is
/// what makes round-tripped margins bit-identical to the in-memory
/// path. Deliberately *not* the SIMD `sqdist_f64` kernel: that one uses
/// lane-strided summation and would change the bits.
pub fn gate_margin_flat(
    gamma: f64,
    rho: f64,
    threshold: f64,
    coefficients: &[f64],
    support: &[f64],
    dim: usize,
    x: &[f64],
) -> f64 {
    let mut acc = 0.0;
    for (i, &c) in coefficients.iter().enumerate() {
        let sv = &support[i * dim..(i + 1) * dim];
        let mut d2 = 0.0;
        for (a, b) in sv.iter().zip(x.iter()) {
            d2 += (a - b) * (a - b);
        }
        acc += c * (-gamma * d2).exp();
    }
    (acc - rho) - threshold
}

/// One user's complete identification template.
#[derive(Debug, Clone, PartialEq)]
pub struct UserTemplate {
    /// The enrolled user id.
    pub user_id: u64,
    /// Quantized mean of the user's scaled enrolment features — the
    /// prefilter key, never used for gate scoring.
    pub centroid: Vec<f32>,
    /// The user's SVDD gates (one per enrolment group under the
    /// per-user gate mode).
    pub gates: Vec<GateTemplate>,
}

impl UserTemplate {
    /// The user's margin on a scaled probe: the maximum over their
    /// gates, `-∞` for a template with no gates. Gate order is
    /// preserved from training, so the fold is deterministic.
    pub fn margin(&self, dim: usize, x: &[f64]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for g in &self.gates {
            best = best.max(g.margin(dim, x));
        }
        best
    }

    /// Validates internal shape consistency against `dim`.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] naming the inconsistency.
    pub fn validate(&self, dim: usize) -> Result<(), StoreError> {
        if self.centroid.len() != dim {
            return Err(StoreError::InvalidTemplate(
                "centroid dimensionality mismatch",
            ));
        }
        for g in &self.gates {
            if g.support.len() != g.coefficients.len() * dim {
                return Err(StoreError::InvalidTemplate(
                    "gate support-vector block does not match its coefficients",
                ));
            }
        }
        Ok(())
    }
}

/// Builds templates with a frozen scaler: the store equivalent of
/// `Authenticator::enroll_with_groups`, factored per user so that
/// enrolling user N+1 trains only user N+1's gates.
#[derive(Debug, Clone)]
pub struct TemplateBuilder {
    scaler: StandardScaler,
    config: AuthConfig,
}

impl TemplateBuilder {
    /// A builder around an already-fitted scaler (frozen for the
    /// store's lifetime — every template must be scaled identically).
    pub fn new(scaler: StandardScaler, config: AuthConfig) -> Self {
        TemplateBuilder { scaler, config }
    }

    /// The frozen scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Trains one user's gates on their raw enrolment groups (one
    /// feature cloud per beep group) and packs them into a template.
    /// Training is `train_user_gates` — the exact path
    /// `Authenticator::enroll_with_groups` uses — so the resulting
    /// gates are bit-identical to an in-memory enrolment with the same
    /// scaler.
    ///
    /// # Errors
    ///
    /// [`EchoImageError::InvalidParameter`] for empty groups or samples
    /// that disagree with the scaler's dimensionality;
    /// [`EchoImageError::Store`] when a trained gate cannot be
    /// templated.
    pub fn build_user(
        &self,
        user_id: u64,
        groups: &[Vec<Vec<f64>>],
    ) -> Result<UserTemplate, EchoImageError> {
        let dim = self.scaler.dim();
        if groups.is_empty() || groups.iter().any(|g| g.is_empty()) {
            return Err(EchoImageError::InvalidParameter(
                "each enrolled user needs at least one non-empty feature group",
            ));
        }
        if groups.iter().flatten().any(|f| f.len() != dim) {
            return Err(EchoImageError::InvalidParameter(
                "enrolment features disagree with the scaler dimensionality",
            ));
        }
        let scaled: Vec<Vec<Vec<f64>>> = groups
            .iter()
            .map(|g| self.scaler.transform_batch(g))
            .collect();
        // Centroid over all scaled samples (group order preserved),
        // accumulated in f64 and quantized once at the end.
        let mut sums = vec![0.0f64; dim];
        let mut count = 0usize;
        for f in scaled.iter().flatten() {
            for (s, &v) in sums.iter_mut().zip(f) {
                *s += v;
            }
            count += 1;
        }
        let centroid: Vec<f32> = sums.iter().map(|&s| (s / count as f64) as f32).collect();
        let mut gates = Vec::new();
        for (svm, threshold) in train_user_gates(&scaled, dim, &self.config) {
            gates.push(GateTemplate::from_svm(&svm, threshold)?);
        }
        Ok(UserTemplate {
            user_id,
            centroid,
            gates,
        })
    }
}

/// The in-memory [`TemplateStore`] backend: `Arc`-shared templates,
/// ids sorted for binary search, and a [`CoarseIndex`] over the
/// quantized centroids. This is both the serving-layer store for small
/// tenants and the reference the shard readers are tested against.
#[derive(Debug, Clone)]
pub struct MemoryStore {
    means: Vec<f64>,
    stds: Vec<f64>,
    dim: usize,
    ids: Vec<u64>,
    users: Vec<Arc<UserTemplate>>,
    index: CoarseIndex,
}

impl MemoryStore {
    /// An empty store around a frozen scaler.
    pub fn new(scaler: &StandardScaler) -> Self {
        Self::from_templates(scaler, Vec::new()).expect("empty store is always valid")
    }

    /// Builds a store from templates (any order; sorted internally).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] for shape mismatches or
    /// duplicate user ids.
    pub fn from_templates(
        scaler: &StandardScaler,
        mut templates: Vec<Arc<UserTemplate>>,
    ) -> Result<Self, StoreError> {
        let dim = scaler.dim();
        for t in &templates {
            t.validate(dim)?;
        }
        templates.sort_by_key(|t| t.user_id);
        if templates.windows(2).any(|w| w[0].user_id == w[1].user_id) {
            return Err(StoreError::InvalidTemplate("duplicate user id"));
        }
        let ids: Vec<u64> = templates.iter().map(|t| t.user_id).collect();
        let mut centroids = Vec::with_capacity(templates.len() * dim);
        for t in &templates {
            centroids.extend_from_slice(&t.centroid);
        }
        let index = CoarseIndex::build(&centroids, dim);
        Ok(MemoryStore {
            means: scaler.means().to_vec(),
            stds: scaler.stds().to_vec(),
            dim,
            ids,
            users: templates,
            index,
        })
    }

    /// A new store with `template` inserted (or replacing the user's
    /// previous template). Existing templates are shared by pointer —
    /// the cost is the id/centroid arrays and the coarse-index rebuild,
    /// never retraining or copying other users' models.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] when the template's shapes
    /// disagree with the store.
    pub fn upsert(&self, template: Arc<UserTemplate>) -> Result<MemoryStore, StoreError> {
        template.validate(self.dim)?;
        let mut users = self.users.clone();
        match users.binary_search_by_key(&template.user_id, |t| t.user_id) {
            Ok(i) => users[i] = template,
            Err(i) => users.insert(i, template),
        }
        let ids: Vec<u64> = users.iter().map(|t| t.user_id).collect();
        let mut centroids = Vec::with_capacity(users.len() * self.dim);
        for t in &users {
            centroids.extend_from_slice(&t.centroid);
        }
        let index = CoarseIndex::build(&centroids, self.dim);
        Ok(MemoryStore {
            means: self.means.clone(),
            stds: self.stds.clone(),
            dim: self.dim,
            ids,
            users,
            index,
        })
    }

    /// The templates, sorted by user id.
    pub fn templates(&self) -> &[Arc<UserTemplate>] {
        &self.users
    }

    /// The frozen scaler, reassembled.
    pub fn scaler(&self) -> StandardScaler {
        StandardScaler::from_parts(self.means.clone(), self.stds.clone())
    }
}

impl TemplateStore for MemoryStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn user_count(&self) -> usize {
        self.users.len()
    }

    fn scaler_means(&self) -> &[f64] {
        &self.means
    }

    fn scaler_stds(&self) -> &[f64] {
        &self.stds
    }

    fn candidates(&self, probe: &[f32], k: usize) -> Vec<Candidate> {
        self.index
            .candidates(probe, k)
            .into_iter()
            .map(|(m, d2)| Candidate {
                user_id: self.ids[m as usize],
                d2,
            })
            .collect()
    }

    fn gate_margin(&self, user_id: u64, x: &[f64]) -> Option<f64> {
        let i = self.ids.binary_search(&user_id).ok()?;
        Some(self.users[i].margin(self.dim, x))
    }

    fn user_ids(&self) -> Vec<u64> {
        self.ids.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_ml::OneClassSvm;

    fn cloud(cx: f64, cy: f64, n: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                let a = ((h & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.4;
                let b = (((h >> 16) & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.4;
                vec![cx + a, cy + b]
            })
            .collect()
    }

    fn builder_for(clouds: &[Vec<Vec<f64>>]) -> TemplateBuilder {
        let all: Vec<Vec<f64>> = clouds.iter().flatten().cloned().collect();
        TemplateBuilder::new(StandardScaler::fit_global(&all), AuthConfig::default())
    }

    #[test]
    fn template_margin_matches_svm_decision_bits() {
        let train = cloud(0.0, 0.0, 40, 7);
        let svm = OneClassSvm::train(&train, Kernel::Rbf { gamma: 0.8 }, 0.1);
        let t = GateTemplate::from_svm(&svm, -0.25).unwrap();
        for probe in [&[0.1, 0.0][..], &[1.5, -2.0], &[0.02, 0.11]] {
            let want = svm.decision(probe) - (-0.25);
            let got = t.margin(2, probe);
            assert_eq!(want.to_bits(), got.to_bits(), "probe {probe:?}");
        }
    }

    #[test]
    fn linear_kernel_is_not_storable() {
        let svm = OneClassSvm::train(&[vec![1.0, 0.0]], Kernel::Linear, 0.5);
        assert_eq!(
            GateTemplate::from_svm(&svm, 0.0).unwrap_err(),
            StoreError::InvalidTemplate("only RBF-kernel gates are storable")
        );
    }

    #[test]
    fn builder_trains_gates_identical_to_authenticator_path() {
        let g1 = cloud(0.0, 0.0, 30, 1);
        let g2 = cloud(0.2, 0.1, 30, 2);
        let b = builder_for(&[g1.clone(), g2.clone()]);
        let t = b.build_user(9, &[g1.clone(), g2.clone()]).unwrap();
        assert_eq!(t.user_id, 9);
        assert_eq!(t.gates.len(), 2);
        // The same groups through train_user_gates directly must yield
        // bit-identical gate parameters.
        let scaled: Vec<Vec<Vec<f64>>> = [&g1, &g2]
            .iter()
            .map(|g| b.scaler().transform_batch(g))
            .collect();
        let direct = train_user_gates(&scaled, 2, &AuthConfig::default());
        for (got, (svm, thr)) in t.gates.iter().zip(&direct) {
            let reference = GateTemplate::from_svm(svm, *thr).unwrap();
            assert_eq!(got, &reference);
        }
    }

    #[test]
    fn builder_rejects_bad_shapes() {
        let b = builder_for(&[cloud(0.0, 0.0, 10, 3)]);
        assert!(b.build_user(1, &[]).is_err());
        assert!(b.build_user(1, &[vec![]]).is_err());
        assert!(b.build_user(1, &[vec![vec![1.0, 2.0, 3.0]]]).is_err());
    }

    #[test]
    fn memory_store_identifies_enrolled_users() {
        let clouds = [
            cloud(0.0, 0.0, 30, 11),
            cloud(3.0, 3.0, 30, 12),
            cloud(-3.0, 2.0, 30, 13),
        ];
        let b = builder_for(&clouds);
        let templates: Vec<Arc<UserTemplate>> = clouds
            .iter()
            .enumerate()
            .map(|(i, g)| Arc::new(b.build_user(i as u64 + 1, std::slice::from_ref(g)).unwrap()))
            .collect();
        let store = MemoryStore::from_templates(b.scaler(), templates).unwrap();
        assert_eq!(store.user_count(), 3);
        assert_eq!(store.user_ids(), vec![1, 2, 3]);
        for (i, g) in clouds.iter().enumerate() {
            let x = store.scaler().transform(&g[0]);
            let margin = store.gate_margin(i as u64 + 1, &x).unwrap();
            assert!(margin.is_finite());
            // The prefilter's nearest candidate is the owning user.
            let xq: Vec<f32> = x.iter().map(|&v| v as f32).collect();
            let cands = store.candidates(&xq, 1);
            assert_eq!(cands[0].user_id, i as u64 + 1);
        }
        assert!(store.gate_margin(99, &[0.0, 0.0]).is_none());
    }

    #[test]
    fn upsert_shares_templates_and_replaces_by_id() {
        let clouds = [cloud(0.0, 0.0, 25, 21), cloud(4.0, -1.0, 25, 22)];
        let b = builder_for(&clouds);
        let t1 = Arc::new(b.build_user(1, &[clouds[0].clone()]).unwrap());
        let t2 = Arc::new(b.build_user(2, &[clouds[1].clone()]).unwrap());
        let store = MemoryStore::from_templates(b.scaler(), vec![t1.clone()]).unwrap();
        let store2 = store.upsert(t2.clone()).unwrap();
        assert_eq!(store.user_count(), 1);
        assert_eq!(store2.user_count(), 2);
        // The original template is pointer-shared, not copied.
        assert!(Arc::ptr_eq(&store2.templates()[0], &t1));
        // Replacing user 1 keeps user 2's Arc.
        let t1b = Arc::new(b.build_user(1, &[clouds[1].clone()]).unwrap());
        let store3 = store2.upsert(t1b.clone()).unwrap();
        assert_eq!(store3.user_count(), 2);
        assert!(Arc::ptr_eq(&store3.templates()[0], &t1b));
        assert!(Arc::ptr_eq(&store3.templates()[1], &t2));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let clouds = [cloud(0.0, 0.0, 20, 31)];
        let b = builder_for(&clouds);
        let t = Arc::new(b.build_user(5, &[clouds[0].clone()]).unwrap());
        let err = MemoryStore::from_templates(b.scaler(), vec![t.clone(), t]).unwrap_err();
        assert_eq!(err, StoreError::InvalidTemplate("duplicate user id"));
    }
}
