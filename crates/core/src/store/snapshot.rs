//! Snapshots and lock-free reads.
//!
//! Re-enrolment never rewrites existing shards: it appends a new shard
//! (or rebuilds an in-memory store) and publishes the result as a fresh
//! immutable snapshot through a [`StoreHandle`]. Publication is one
//! `Arc` pointer swap guarded by a mutex that **only writers take**;
//! readers in flight keep the snapshot they started with, and
//! steady-state readers are served from a thread-local cache that they
//! revalidate with a single atomic epoch load — no lock, no contended
//! cache line, no reference-count ping-pong between threads.
//!
//! [`ShardStore`] is the multi-shard snapshot: an ordered list of
//! immutable shards where the **newest shard wins** for any user id
//! present in several (that is what makes append-only re-enrolment
//! correct).

use super::shard::Shard;
use super::{Candidate, StoreError, TemplateStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A read-only snapshot over one or more shards, oldest first.
#[derive(Debug)]
pub struct ShardStore {
    shards: Vec<Shard>,
    dim: usize,
    /// Distinct users across all shards (newest-wins dedup).
    distinct_users: usize,
}

impl ShardStore {
    /// Wraps already-opened shards (oldest first — later shards shadow
    /// earlier ones).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] when no shard is given and
    /// [`StoreError::Corrupt`] when shards disagree on dimensionality
    /// or scaler (bit-compared: every shard of a store must have been
    /// written under the same frozen scaler).
    pub fn from_shards(shards: Vec<Shard>) -> Result<Self, StoreError> {
        let first = shards.first().ok_or(StoreError::InvalidTemplate(
            "a shard store needs at least one shard",
        ))?;
        let dim = first.dim();
        let same_bits = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        for s in &shards[1..] {
            if s.dim() != dim {
                return Err(StoreError::Corrupt {
                    offset: 0,
                    what: "shards disagree on feature dimensionality",
                });
            }
            if !same_bits(s.means(), first.means()) || !same_bits(s.stds(), first.stds()) {
                return Err(StoreError::Corrupt {
                    offset: 0,
                    what: "shards disagree on the frozen scaler",
                });
            }
        }
        let distinct_users = merged_ids(&shards).len();
        Ok(ShardStore {
            shards,
            dim,
            distinct_users,
        })
    }

    /// Opens every `*.echoshard` file under `dir` (sorted by file name,
    /// so `shard-000001.echoshard` < `shard-000002.echoshard` gives the
    /// append order) and wraps them as one store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] listing the directory, any open error, or the
    /// [`ShardStore::from_shards`] validation errors.
    pub fn open_dir(dir: &std::path::Path) -> Result<Self, StoreError> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| StoreError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "echoshard"))
            .collect();
        paths.sort();
        let shards = paths
            .iter()
            .map(|p| Shard::open(p))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_shards(shards)
    }

    /// The shards, oldest first.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }
}

/// Merged distinct user ids across shards, ascending.
fn merged_ids(shards: &[Shard]) -> Vec<u64> {
    let mut ids: Vec<u64> = shards
        .iter()
        .flat_map(|s| s.ids().iter().copied())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

impl TemplateStore for ShardStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn user_count(&self) -> usize {
        self.distinct_users
    }

    fn scaler_means(&self) -> &[f64] {
        self.shards[0].means()
    }

    fn scaler_stds(&self) -> &[f64] {
        self.shards[0].stds()
    }

    fn candidates(&self, probe: &[f32], k: usize) -> Vec<Candidate> {
        // Newest shard first: when a re-enrolled user appears in
        // several shards' top-k, the newest centroid's distance is the
        // one that ranks them.
        let mut out: Vec<Candidate> = Vec::new();
        for shard in self.shards.iter().rev() {
            let ids = shard.ids();
            for (m, d2) in shard.candidates(probe, k) {
                let user_id = ids[m as usize];
                if !out.iter().any(|c| c.user_id == user_id) {
                    out.push(Candidate { user_id, d2 });
                }
            }
        }
        out.sort_by(|a, b| a.d2.total_cmp(&b.d2).then(a.user_id.cmp(&b.user_id)));
        out.truncate(k);
        out
    }

    fn gate_margin(&self, user_id: u64, x: &[f64]) -> Option<f64> {
        for shard in self.shards.iter().rev() {
            if let Some(i) = shard.find(user_id) {
                return Some(shard.margin_by_index(i, x));
            }
        }
        None
    }

    fn user_ids(&self) -> Vec<u64> {
        merged_ids(&self.shards)
    }
}

static NEXT_HANDLE_ID: AtomicU64 = AtomicU64::new(1);

/// One thread's cached snapshot: `(handle id, epoch, snapshot)`.
type CachedSnapshot = Option<(u64, u64, Arc<dyn TemplateStore>)>;

thread_local! {
    /// One-slot snapshot cache per thread.
    static CACHED: std::cell::RefCell<CachedSnapshot> =
        const { std::cell::RefCell::new(None) };
}

/// The published-snapshot cell readers and writers share.
///
/// `load` is wait-free in the steady state: one atomic epoch read plus
/// a thread-local compare. The slot mutex is touched only when the
/// epoch moved (a reload was published) or the thread has never read
/// this handle — and by `publish`, which swaps one `Arc`.
pub struct StoreHandle {
    id: u64,
    epoch: AtomicU64,
    slot: Mutex<Arc<dyn TemplateStore>>,
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("id", &self.id)
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl StoreHandle {
    /// A handle initially publishing `snapshot`.
    pub fn new(snapshot: Arc<dyn TemplateStore>) -> Self {
        StoreHandle {
            id: NEXT_HANDLE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            slot: Mutex::new(snapshot),
        }
    }

    /// The current snapshot. Readers hold the returned `Arc` for the
    /// whole request; a concurrent [`StoreHandle::publish`] never
    /// invalidates it.
    pub fn load(&self) -> Arc<dyn TemplateStore> {
        // Epoch first, then the slot: if a publish lands in between we
        // cache tomorrow's snapshot under yesterday's epoch, which the
        // next load simply refreshes — stale by at most one swap, and
        // never the other way round.
        let epoch = self.epoch.load(Ordering::Acquire);
        let cached = CACHED.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(|(id, e, arc)| (*id == self.id && *e == epoch).then(|| Arc::clone(arc)))
        });
        if let Some(arc) = cached {
            return arc;
        }
        let arc = Arc::clone(&self.slot.lock().unwrap());
        CACHED.with(|c| *c.borrow_mut() = Some((self.id, epoch, Arc::clone(&arc))));
        arc
    }

    /// Publishes a new snapshot: one pointer swap, then an epoch bump
    /// that invalidates every thread's cache on its next load.
    pub fn publish(&self, snapshot: Arc<dyn TemplateStore>) {
        *self.slot.lock().unwrap() = snapshot;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Number of publishes so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use crate::store::template::{MemoryStore, TemplateBuilder};
    use echo_ml::StandardScaler;

    fn tiny_store(shift: f64) -> Arc<MemoryStore> {
        let cloud: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![shift + (i % 5) as f64 * 0.01, (i % 4) as f64 * 0.01])
            .collect();
        let b = TemplateBuilder::new(StandardScaler::fit_global(&cloud), AuthConfig::default());
        let t = Arc::new(b.build_user(1, &[cloud]).unwrap());
        Arc::new(MemoryStore::from_templates(b.scaler(), vec![t]).unwrap())
    }

    #[test]
    fn handle_serves_published_snapshot_and_bumps_epoch() {
        let a = tiny_store(0.0);
        let b = tiny_store(5.0);
        let handle = StoreHandle::new(a.clone());
        assert_eq!(handle.epoch(), 0);
        let got = handle.load();
        assert_eq!(
            got.scaler_means()[0].to_bits(),
            a.scaler_means()[0].to_bits()
        );
        // Cached load returns the same snapshot without a publish.
        let again = handle.load();
        assert!(Arc::ptr_eq(&got, &again));
        handle.publish(b.clone());
        assert_eq!(handle.epoch(), 1);
        let got = handle.load();
        assert_eq!(
            got.scaler_means()[0].to_bits(),
            b.scaler_means()[0].to_bits()
        );
    }

    #[test]
    fn in_flight_snapshot_survives_publish() {
        let handle = StoreHandle::new(tiny_store(0.0));
        let held = handle.load();
        let before = held.scaler_means()[0];
        handle.publish(tiny_store(9.0));
        // The held Arc still reads the old snapshot.
        assert_eq!(held.scaler_means()[0].to_bits(), before.to_bits());
        // A fresh load sees the new one.
        assert_ne!(handle.load().scaler_means()[0].to_bits(), before.to_bits());
    }

    #[test]
    fn two_handles_do_not_cross_pollinate_caches() {
        let h1 = StoreHandle::new(tiny_store(0.0));
        let h2 = StoreHandle::new(tiny_store(3.0));
        let a = h1.load();
        let b = h2.load();
        assert_ne!(a.scaler_means()[0].to_bits(), b.scaler_means()[0].to_bits());
        // Re-loading h1 after h2 refreshed the thread-local must not
        // return h2's snapshot.
        let a2 = h1.load();
        assert_eq!(
            a2.scaler_means()[0].to_bits(),
            a.scaler_means()[0].to_bits()
        );
    }
}
