//! Shard files: the writer and the two readers.
//!
//! A shard is an immutable, checksummed file of user templates plus a
//! prebuilt coarse index (format in [`super::format`]). Writes are
//! atomic — encode to `<path>.tmp`, `fsync`, rename — so a crashed
//! writer can never leave a half-shard where a reader will find it.
//!
//! Two readers share the validated format:
//!
//! * [`MappedShard`] memory-maps the file and serves ids, centroids,
//!   the coarse index and gate parameters zero-copy, casting in place.
//!   All casts are proven in bounds and aligned **once at open**; the
//!   steady-state read path never revalidates.
//! * [`HeapShard`] decodes eagerly via `from_le_bytes` — portable to
//!   any endianness and the reference the mapped reader is tested
//!   against.
//!
//! Selection is automatic ([`ReaderMode::Auto`]: mmap where available)
//! and overridable with `ECHOIMAGE_STORE_READER=auto|mmap|heap`.

use super::format::{
    cast_f32, cast_f64, cast_u32, cast_u64, parse_header, Cursor, Header, Writer, HEADER_LEN,
    MAGIC, TRAILER_LEN, VERSION,
};
use super::mmap::mmap_available;
#[cfg(unix)]
use super::mmap::MmapRegion;
use super::prefilter::{candidates_in, validate_csr, CoarseIndex};
use super::template::{gate_margin_flat, GateTemplate, UserTemplate};
use super::StoreError;
use echo_ml::StandardScaler;
use std::path::Path;
use std::sync::Arc;

/// Environment variable selecting the shard reader implementation.
pub const READER_ENV: &str = "ECHOIMAGE_STORE_READER";

/// Which reader implementation to open shards with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReaderMode {
    /// Mmap where the target supports it, heap otherwise.
    #[default]
    Auto,
    /// Force the zero-copy mmap reader (open fails where unsupported).
    Mmap,
    /// Force the portable heap reader.
    Heap,
}

impl ReaderMode {
    /// Parses [`READER_ENV`]; unset or unrecognised values mean
    /// [`ReaderMode::Auto`] (mirroring `ECHOIMAGE_SIMD`'s behaviour).
    pub fn from_env() -> Self {
        match std::env::var(READER_ENV).as_deref() {
            Ok("mmap") => ReaderMode::Mmap,
            Ok("heap") => ReaderMode::Heap,
            _ => ReaderMode::Auto,
        }
    }
}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Accumulates templates and writes one shard file atomically.
#[derive(Debug, Clone)]
pub struct ShardWriter {
    dim: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
    templates: Vec<Arc<UserTemplate>>,
}

impl ShardWriter {
    /// A writer for templates scaled by `scaler`.
    pub fn new(scaler: &StandardScaler) -> Self {
        ShardWriter {
            dim: scaler.dim(),
            means: scaler.means().to_vec(),
            stds: scaler.stds().to_vec(),
            templates: Vec::new(),
        }
    }

    /// Adds one user's template.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] when shapes disagree with the
    /// writer's dimensionality.
    pub fn push(&mut self, template: Arc<UserTemplate>) -> Result<(), StoreError> {
        template.validate(self.dim)?;
        self.templates.push(template);
        Ok(())
    }

    /// Number of templates queued.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// `true` when no templates are queued.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Encodes the shard image in memory (sorted by user id, coarse
    /// index prebuilt, checksum trailer appended).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] on duplicate user ids.
    pub fn encode(&self) -> Result<Vec<u8>, StoreError> {
        let mut templates: Vec<&Arc<UserTemplate>> = self.templates.iter().collect();
        templates.sort_by_key(|t| t.user_id);
        if templates.windows(2).any(|w| w[0].user_id == w[1].user_id) {
            return Err(StoreError::InvalidTemplate("duplicate user id"));
        }
        let n = templates.len();
        let dim = self.dim;
        let mut centroids = Vec::with_capacity(n * dim);
        for t in &templates {
            centroids.extend_from_slice(&t.centroid);
        }
        let index = CoarseIndex::build(&centroids, dim);

        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        w.put_u32(dim as u32);
        w.put_u32(n as u32);
        w.put_u32(index.n_cells() as u32);
        for _ in 0..9 {
            w.put_u64(0); // section offsets + file_len, patched below
        }
        debug_assert_eq!(w.len(), HEADER_LEN);

        let scaler_off = w.align8();
        for &m in &self.means {
            w.put_f64(m);
        }
        for &s in &self.stds {
            w.put_f64(s);
        }
        let ids_off = w.align8();
        for t in &templates {
            w.put_u64(t.user_id);
        }
        let centroids_off = w.align8();
        for &c in &centroids {
            w.put_f32(c);
        }
        let cell_cent_off = w.align8();
        for &c in index.cells() {
            w.put_f32(c);
        }
        let cell_offs_off = w.align8();
        for &o in index.offsets() {
            w.put_u32(o);
        }
        let members_off = w.align8();
        for &m in index.members() {
            w.put_u32(m);
        }
        let rec_tab_off = w.align8();
        for _ in 0..n + 1 {
            w.put_u64(0); // record offsets, patched below
        }
        let gates_off = w.align8();
        for (i, t) in templates.iter().enumerate() {
            w.patch_u64(rec_tab_off + 8 * i, w.len() as u64);
            w.put_u32(t.gates.len() as u32);
            w.put_u32(0);
            for g in &t.gates {
                w.put_u32(g.n_sv() as u32);
                w.put_u32(0);
                w.put_f64(g.gamma);
                w.put_f64(g.rho);
                w.put_f64(g.threshold);
                for &c in &g.coefficients {
                    w.put_f64(c);
                }
                for &v in &g.support {
                    w.put_f64(v);
                }
            }
        }
        let end = w.len();
        w.patch_u64(rec_tab_off + 8 * n, end as u64);
        w.patch_u64(24, scaler_off as u64);
        w.patch_u64(32, ids_off as u64);
        w.patch_u64(40, centroids_off as u64);
        w.patch_u64(48, cell_cent_off as u64);
        w.patch_u64(56, cell_offs_off as u64);
        w.patch_u64(64, members_off as u64);
        w.patch_u64(72, rec_tab_off as u64);
        w.patch_u64(80, gates_off as u64);
        w.patch_u64(88, (end + TRAILER_LEN) as u64);
        Ok(w.finish())
    }

    /// Writes the shard to `path` atomically: encode, write to
    /// `<path>.tmp`, `fsync`, rename over `path`, `fsync` the parent
    /// directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidTemplate`] from [`ShardWriter::encode`] or
    /// [`StoreError::Io`] from the filesystem.
    pub fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        let bytes = self.encode()?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            std::io::Write::write_all(&mut f, &bytes).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        if let Some(dir) = path.parent() {
            // Make the rename durable; best-effort (some filesystems
            // refuse to open directories).
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// The zero-copy reader: holds the mapping and the parsed header, with
/// every cast proven valid at open time. The one owned allocation is
/// the cell-ordered centroid scan copy (see
/// [`super::prefilter::build_scan`]) — a few percent of the shard,
/// rebuilt at open so candidate queries stream instead of chasing the
/// user-ordered centroid section.
#[cfg(unix)]
#[derive(Debug)]
pub struct MappedShard {
    region: MmapRegion,
    header: Header,
    scan: Vec<f32>,
}

#[cfg(unix)]
impl MappedShard {
    /// Maps and fully validates `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, otherwise any format
    /// error from [`parse_header`] or the section validation, all with
    /// byte-offset context.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
        let region = MmapRegion::map(&file).map_err(|e| io_err(path, e))?;
        let header = parse_header(region.bytes())?;
        let mut shard = MappedShard {
            region,
            header,
            scan: Vec::new(),
        };
        shard.validate()?;
        let b = shard.bytes();
        let h = &shard.header;
        let dim = h.dim as usize;
        let n = h.n_users as usize;
        let centroids =
            cast_f32(b, h.centroids_off as usize, n * dim, "centroids").expect("validated");
        let members = cast_u32(b, h.members_off as usize, n, "members").expect("validated");
        shard.scan = super::prefilter::build_scan(dim, members, centroids);
        Ok(shard)
    }

    fn bytes(&self) -> &[u8] {
        self.region.bytes()
    }

    fn validate(&self) -> Result<(), StoreError> {
        let b = self.bytes();
        let h = &self.header;
        let dim = h.dim as usize;
        let n = h.n_users as usize;
        let n_cells = h.n_cells as usize;
        cast_f64(b, h.scaler_off as usize, 2 * dim, "scaler")?;
        let ids = cast_u64(b, h.ids_off as usize, n, "user ids")?;
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::Corrupt {
                offset: h.ids_off,
                what: "user ids not strictly ascending",
            });
        }
        cast_f32(b, h.centroids_off as usize, n * dim, "centroids")?;
        let cells = cast_f32(b, h.cell_cent_off as usize, n_cells * dim, "cell centroids")?;
        let offsets = cast_u32(b, h.cell_offs_off as usize, n_cells + 1, "cell offsets")?;
        let members = cast_u32(b, h.members_off as usize, n, "cell members")?;
        validate_csr(dim, cells, offsets, members, n).map_err(|e| match e {
            StoreError::Corrupt { what, .. } => StoreError::Corrupt {
                offset: h.cell_offs_off,
                what,
            },
            other => other,
        })?;
        let rec_tab = cast_u64(b, h.rec_tab_off as usize, n + 1, "record table")?;
        let gates_end = (b.len() - TRAILER_LEN) as u64;
        if rec_tab.first().is_some_and(|&r| r != h.gates_off)
            || rec_tab.last() != Some(&gates_end)
            || rec_tab.windows(2).any(|w| w[0] > w[1])
            || rec_tab.iter().any(|&r| r % 8 != 0)
        {
            return Err(StoreError::Corrupt {
                offset: h.rec_tab_off,
                what: "record table is not a monotone 8-aligned span of the gate section",
            });
        }
        // Walk every record once so the hot path can read unchecked.
        for u in 0..n {
            let rec_end = rec_tab[u + 1] as usize;
            let mut c = Cursor::at(&b[..rec_end], rec_tab[u] as usize);
            let n_gates = c.u32("gate count")?;
            c.u32("gate count padding")?;
            for _ in 0..n_gates {
                let n_sv = c.u32("support vector count")? as usize;
                c.u32("support vector padding")?;
                let _ = c.f64s(3, "gate parameters")?;
                let block = n_sv
                    .checked_mul(dim)
                    .and_then(|s| s.checked_add(n_sv))
                    .ok_or(StoreError::Corrupt {
                        offset: c.pos() as u64,
                        what: "gate size overflows",
                    })?;
                let _ = c.f64s(block, "gate coefficients and support vectors")?;
            }
            if c.pos() != rec_end {
                return Err(StoreError::Corrupt {
                    offset: c.pos() as u64,
                    what: "gate record does not end at its table boundary",
                });
            }
        }
        Ok(())
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.header.dim as usize
    }

    /// Users in this shard.
    pub fn n_users(&self) -> usize {
        self.header.n_users as usize
    }

    /// Sorted user ids, zero-copy.
    pub fn ids(&self) -> &[u64] {
        cast_u64(
            self.bytes(),
            self.header.ids_off as usize,
            self.n_users(),
            "user ids",
        )
        .expect("validated at open")
    }

    /// Scaler means, zero-copy.
    pub fn means(&self) -> &[f64] {
        cast_f64(
            self.bytes(),
            self.header.scaler_off as usize,
            self.dim(),
            "scaler means",
        )
        .expect("validated at open")
    }

    /// Scaler divisors, zero-copy.
    pub fn stds(&self) -> &[f64] {
        cast_f64(
            self.bytes(),
            self.header.scaler_off as usize + 8 * self.dim(),
            self.dim(),
            "scaler stds",
        )
        .expect("validated at open")
    }

    /// Top-`k` candidate user *indices* for a probe, via the on-disk
    /// coarse index (cells/offsets/members zero-copy, member centroids
    /// from the cell-ordered scan copy).
    pub fn candidates(&self, probe: &[f32], k: usize) -> Vec<(u32, f32)> {
        let b = self.bytes();
        let h = &self.header;
        let dim = self.dim();
        let n = self.n_users();
        let n_cells = h.n_cells as usize;
        let cells =
            cast_f32(b, h.cell_cent_off as usize, n_cells * dim, "cells").expect("validated");
        let offsets =
            cast_u32(b, h.cell_offs_off as usize, n_cells + 1, "offsets").expect("validated");
        let members = cast_u32(b, h.members_off as usize, n, "members").expect("validated");
        candidates_in(dim, cells, offsets, members, &self.scan, probe, k)
    }

    /// The user-at-index's gate margin on a scaled probe, evaluated
    /// straight off the mapped gate record.
    pub fn margin_by_index(&self, user: usize, x: &[f64]) -> f64 {
        let b = self.bytes();
        let dim = self.dim();
        let rec_tab = cast_u64(
            b,
            self.header.rec_tab_off as usize,
            self.n_users() + 1,
            "record table",
        )
        .expect("validated");
        let mut p = rec_tab[user] as usize;
        let n_gates = u32::from_le_bytes(b[p..p + 4].try_into().unwrap());
        p += 8;
        let mut best = f64::NEG_INFINITY;
        for _ in 0..n_gates {
            let n_sv = u32::from_le_bytes(b[p..p + 4].try_into().unwrap()) as usize;
            p += 8;
            let params = cast_f64(b, p, 3, "gate parameters").expect("validated");
            let (gamma, rho, threshold) = (params[0], params[1], params[2]);
            p += 24;
            let coeffs = cast_f64(b, p, n_sv, "coefficients").expect("validated");
            p += 8 * n_sv;
            let support = cast_f64(b, p, n_sv * dim, "support vectors").expect("validated");
            p += 8 * n_sv * dim;
            best = best.max(gate_margin_flat(
                gamma, rho, threshold, coeffs, support, dim, x,
            ));
        }
        best
    }
}

/// The portable reader: everything decoded onto the heap at open.
#[derive(Debug, Clone)]
pub struct HeapShard {
    dim: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
    ids: Vec<u64>,
    index: CoarseIndex,
    users: Vec<Vec<GateTemplate>>,
}

impl HeapShard {
    /// Reads and fully decodes `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, otherwise any format
    /// error with byte-offset context.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        Self::decode(&bytes)
    }

    /// Decodes a shard image from memory (shared by tests and `open`).
    ///
    /// # Errors
    ///
    /// As for [`HeapShard::open`], minus I/O.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let h = parse_header(bytes)?;
        let dim = h.dim as usize;
        let n = h.n_users as usize;
        let n_cells = h.n_cells as usize;
        let mut c = Cursor::at(bytes, h.scaler_off as usize);
        let means = c.f64s(dim, "scaler means")?;
        let stds = c.f64s(dim, "scaler stds")?;
        let ids = Cursor::at(bytes, h.ids_off as usize).u64s(n, "user ids")?;
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::Corrupt {
                offset: h.ids_off,
                what: "user ids not strictly ascending",
            });
        }
        let centroids = Cursor::at(bytes, h.centroids_off as usize).f32s(n * dim, "centroids")?;
        let cells =
            Cursor::at(bytes, h.cell_cent_off as usize).f32s(n_cells * dim, "cell centroids")?;
        let offsets =
            Cursor::at(bytes, h.cell_offs_off as usize).u32s(n_cells + 1, "cell offsets")?;
        let members = Cursor::at(bytes, h.members_off as usize).u32s(n, "cell members")?;
        let index = CoarseIndex::from_parts(dim, cells, offsets, members, &centroids).map_err(
            |e| match e {
                StoreError::Corrupt { what, .. } => StoreError::Corrupt {
                    offset: h.cell_offs_off,
                    what,
                },
                other => other,
            },
        )?;
        let rec_tab = Cursor::at(bytes, h.rec_tab_off as usize).u64s(n + 1, "record table")?;
        let gates_end = (bytes.len() - TRAILER_LEN) as u64;
        if rec_tab.first().is_some_and(|&r| r != h.gates_off)
            || rec_tab.last() != Some(&gates_end)
            || rec_tab.windows(2).any(|w| w[0] > w[1])
        {
            return Err(StoreError::Corrupt {
                offset: h.rec_tab_off,
                what: "record table is not a monotone span of the gate section",
            });
        }
        let mut users = Vec::with_capacity(n);
        for u in 0..n {
            let rec_end = rec_tab[u + 1] as usize;
            let mut c = Cursor::at(&bytes[..rec_end.min(bytes.len())], rec_tab[u] as usize);
            let n_gates = c.u32("gate count")?;
            c.u32("gate count padding")?;
            let mut gates = Vec::with_capacity(n_gates as usize);
            for _ in 0..n_gates {
                let n_sv = c.u32("support vector count")? as usize;
                c.u32("support vector padding")?;
                let params = c.f64s(3, "gate parameters")?;
                let coefficients = c.f64s(n_sv, "gate coefficients")?;
                let sv_len = n_sv.checked_mul(dim).ok_or(StoreError::Corrupt {
                    offset: c.pos() as u64,
                    what: "gate size overflows",
                })?;
                let support = c.f64s(sv_len, "gate support vectors")?;
                gates.push(GateTemplate {
                    gamma: params[0],
                    rho: params[1],
                    threshold: params[2],
                    coefficients,
                    support,
                });
            }
            if c.pos() != rec_end {
                return Err(StoreError::Corrupt {
                    offset: c.pos() as u64,
                    what: "gate record does not end at its table boundary",
                });
            }
            users.push(gates);
        }
        Ok(HeapShard {
            dim,
            means,
            stds,
            ids,
            index,
            users,
        })
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Users in this shard.
    pub fn n_users(&self) -> usize {
        self.ids.len()
    }

    /// Sorted user ids.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Scaler means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Scaler divisors.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Top-`k` candidate user indices for a probe.
    pub fn candidates(&self, probe: &[f32], k: usize) -> Vec<(u32, f32)> {
        self.index.candidates(probe, k)
    }

    /// The user-at-index's gate margin on a scaled probe.
    pub fn margin_by_index(&self, user: usize, x: &[f64]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for g in &self.users[user] {
            best = best.max(g.margin(self.dim, x));
        }
        best
    }
}

/// An open shard, whichever reader backs it.
#[derive(Debug)]
pub enum Shard {
    /// Zero-copy mmap reader.
    #[cfg(unix)]
    Mapped(MappedShard),
    /// Portable heap reader.
    Heap(HeapShard),
}

impl Shard {
    /// Opens `path` with the reader selected by [`READER_ENV`].
    ///
    /// # Errors
    ///
    /// See [`Shard::open_with`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::open_with(path, ReaderMode::from_env())
    }

    /// Opens `path` with an explicit reader choice.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the chosen reader, or
    /// [`StoreError::Io`] when `mode` is [`ReaderMode::Mmap`] on a
    /// target without a usable mmap reader.
    pub fn open_with(path: &Path, mode: ReaderMode) -> Result<Self, StoreError> {
        let use_mmap = match mode {
            ReaderMode::Auto => mmap_available(),
            ReaderMode::Mmap => {
                if !mmap_available() {
                    return Err(StoreError::Io {
                        path: path.display().to_string(),
                        message: "mmap reader unavailable on this target".to_string(),
                    });
                }
                true
            }
            ReaderMode::Heap => false,
        };
        #[cfg(unix)]
        if use_mmap {
            return Ok(Shard::Mapped(MappedShard::open(path)?));
        }
        let _ = use_mmap;
        Ok(Shard::Heap(HeapShard::open(path)?))
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.dim(),
            Shard::Heap(s) => s.dim(),
        }
    }

    /// Users in this shard.
    pub fn n_users(&self) -> usize {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.n_users(),
            Shard::Heap(s) => s.n_users(),
        }
    }

    /// Sorted user ids.
    pub fn ids(&self) -> &[u64] {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.ids(),
            Shard::Heap(s) => s.ids(),
        }
    }

    /// Scaler means.
    pub fn means(&self) -> &[f64] {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.means(),
            Shard::Heap(s) => s.means(),
        }
    }

    /// Scaler divisors.
    pub fn stds(&self) -> &[f64] {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.stds(),
            Shard::Heap(s) => s.stds(),
        }
    }

    /// Top-`k` candidate user indices for a probe.
    pub fn candidates(&self, probe: &[f32], k: usize) -> Vec<(u32, f32)> {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.candidates(probe, k),
            Shard::Heap(s) => s.candidates(probe, k),
        }
    }

    /// The user-at-index's gate margin on a scaled probe.
    pub fn margin_by_index(&self, user: usize, x: &[f64]) -> f64 {
        match self {
            #[cfg(unix)]
            Shard::Mapped(s) => s.margin_by_index(user, x),
            Shard::Heap(s) => s.margin_by_index(user, x),
        }
    }

    /// Index of `user_id` within this shard, if present.
    pub fn find(&self, user_id: u64) -> Option<usize> {
        self.ids().binary_search(&user_id).ok()
    }
}
