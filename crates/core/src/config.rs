//! Pipeline configuration (the paper's §V-A parameter choices).

pub use crate::health::HealthConfig;
use echo_dsp::chirp::LfmChirp;

/// Probing-beep parameters (paper §V-A).
///
/// The paper settles on a 2–3 kHz band (below the array's grating-lobe
/// limit, above most ambient noise), a 2 ms length (long enough for the
/// transducers, short enough to bound multipath smearing) and a 0.5 s
/// interval (echoes die out within ~0.3 s).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeepConfig {
    /// Band start, Hz.
    pub f_start: f64,
    /// Band end, Hz.
    pub f_end: f64,
    /// Chirp duration, seconds.
    pub duration: f64,
    /// Interval between consecutive beeps, seconds.
    pub interval: f64,
    /// ADC sample rate, Hz.
    pub sample_rate: f64,
}

impl BeepConfig {
    /// The paper's parameters: 2–3 kHz, 2 ms, 0.5 s interval at 48 kHz.
    pub fn paper() -> Self {
        BeepConfig {
            f_start: 2_000.0,
            f_end: 3_000.0,
            duration: 0.002,
            interval: 0.5,
            sample_rate: 48_000.0,
        }
    }

    /// The chirp this configuration describes.
    pub fn chirp(&self) -> LfmChirp {
        LfmChirp::new(self.f_start, self.f_end, self.duration, self.sample_rate)
    }

    /// Centre frequency `f₀` used for narrowband steering.
    pub fn center_frequency(&self) -> f64 {
        (self.f_start + self.f_end) / 2.0
    }

    /// Chirp length in samples.
    pub fn chirp_samples(&self) -> usize {
        (self.duration * self.sample_rate).round() as usize
    }
}

impl Default for BeepConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Distance-estimation parameters (paper §V-B).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistanceConfig {
    /// Steered azimuth θ; the paper uses π/2 (straight ahead).
    pub azimuth: f64,
    /// Steered elevation φ; the paper picks a value in [π/3, 2π/3] that
    /// lands on the upper body.
    pub elevation: f64,
    /// Chirp-period length after the direct-path peak, seconds (paper:
    /// 0.002 s).
    pub chirp_period: f64,
    /// Echo-period length after the chirp period, seconds (paper:
    /// 0.01 s).
    pub echo_period: f64,
    /// Peak neighbourhood half-width `d`, in samples.
    pub peak_distance: usize,
    /// Peak threshold as a fraction of the envelope maximum. `E(t)`
    /// accumulates *squared* envelopes (Eq. 10), and the direct chirp is
    /// ~20–30× stronger than body echoes in amplitude, so echo peaks sit
    /// around 10⁻³ of the maximum; the threshold must sit well below that
    /// while staying above the noise floor.
    pub peak_threshold_ratio: f64,
    /// Mean speaker→microphone path length, metres, used to convert the
    /// direct-peak-relative echo delay into a round-trip time (the
    /// prototype places the speaker ~8 cm beside the array).
    pub direct_path_length: f64,
    /// Height of the dominant echoing body patch (the chest) above the
    /// array, metres. The planar tabletop array has no elevation
    /// resolution, so instead of projecting with the *steered* φ the
    /// estimator projects with the φ implied by this calibrated patch
    /// height — the same `D_p = D_f·sin φ` geometry (paper §V-B) with a
    /// physically consistent φ.
    pub echo_height_offset: f64,
    /// The chest stands proud of the user's standing position; the echo
    /// onset arrives earlier than the torso plane by about this much,
    /// metres.
    pub surface_onset_correction: f64,
    /// Echo selection threshold: the echo time is the *leading edge* of
    /// the strongest lobe in the echo period — the first sample (walking
    /// back from the lobe maximum) where the smoothed envelope still
    /// reaches this fraction of the lobe maximum. Leading edges are far
    /// more stable under coherent speckle than lobe maxima.
    pub echo_onset_fraction: f64,
    /// Moving-average window applied to `E(t)` before the leading-edge
    /// search, seconds.
    pub envelope_smoothing: f64,
}

impl Default for DistanceConfig {
    fn default() -> Self {
        DistanceConfig {
            azimuth: std::f64::consts::FRAC_PI_2,
            // Within the paper's [π/3, 2π/3] range, chosen where a
            // tabletop array actually sees a standing user's chest
            // (~15° above horizontal).
            elevation: 1.3,
            chirp_period: 0.002,
            echo_period: 0.010,
            peak_distance: 24,
            peak_threshold_ratio: 1e-5,
            direct_path_length: 0.08,
            echo_height_offset: 0.2,
            surface_onset_correction: 0.20,
            echo_onset_fraction: 0.35,
            envelope_smoothing: 0.001,
        }
    }
}

/// Imaging-plane parameters (paper §V-C).
///
/// The paper uses a 180×180 grid of 1 cm cells (±0.9 m). The default here
/// is a 32×32 grid of 5 cm cells (±0.8 m): the same physical span at a
/// resolution matched to the 6-microphone array's beamwidth, sized so the
/// full evaluation runs on one CPU core. The paper-scale grid is
/// available via [`ImagingConfig::paper_full`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImagingConfig {
    /// Grid cells per side (image is `grid_n × grid_n`).
    pub grid_n: usize,
    /// Cell edge length, metres.
    pub grid_spacing: f64,
    /// Time-gate safeguard `d'` around the expected echo delay, seconds.
    pub safeguard: f64,
    /// Use MVDR (paper) or delay-and-sum (ablation baseline).
    pub beamformer: BeamformerKind,
}

/// Which beamformer scans the imaging plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BeamformerKind {
    /// Minimum-variance distortionless response (the paper's design).
    Mvdr,
    /// Conventional delay-and-sum (ablation baseline).
    DelayAndSum,
}

impl ImagingConfig {
    /// The paper's full-scale plane: 180×180 cells of 1 cm.
    pub fn paper_full() -> Self {
        ImagingConfig {
            grid_n: 180,
            grid_spacing: 0.01,
            ..ImagingConfig::default()
        }
    }

    /// Half-extent of the imaging plane, metres.
    pub fn half_extent(&self) -> f64 {
        self.grid_n as f64 * self.grid_spacing / 2.0
    }

    /// Plane coordinates `(x_k, z_k)` of cell `(col, row)`; row 0 is the
    /// top of the image (largest z).
    pub fn cell_center(&self, col: usize, row: usize) -> (f64, f64) {
        let half = self.half_extent();
        let x = (col as f64 + 0.5) * self.grid_spacing - half;
        let z = half - (row as f64 + 0.5) * self.grid_spacing;
        (x, z)
    }
}

impl Default for ImagingConfig {
    fn default() -> Self {
        ImagingConfig {
            grid_n: 32,
            grid_spacing: 0.05,
            safeguard: 0.0006,
            beamformer: BeamformerKind::Mvdr,
        }
    }
}

/// How the MVDR noise covariance `ρ_n` is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CovarianceMode {
    /// Model-based spherically isotropic diffuse-field coherence at the
    /// beep centre frequency (deterministic superdirective weights — the
    /// default, because a biometric needs weights that do not wander
    /// with each short noise observation).
    #[default]
    Isotropic,
    /// Estimated by pooling the noise-only prerolls of the beep train.
    Measured,
    /// Spatially white (MVDR degenerates to delay-and-sum).
    Identity,
}

/// Anti-replay spatial check on the imaging path (DESIGN.md §14):
/// rejects attempts whose acoustic images are too *flat* — the
/// collapsed-structure signature of a point-source re-emission.
///
/// Off by default: the screen is an attack countermeasure layered on
/// top of the paper's §V pipeline, and enabling it changes the audit
/// stream (accepted attempts gain a measured spread). The attack
/// evaluation (`fig_attack`), the spoof audit suite, and the CI
/// spoof-gate all switch it on explicitly.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpatialCheckConfig {
    /// Run the screen at all.
    pub enabled: bool,
    /// Reject ceiling on the train's mean normalized image spread
    /// (see [`crate::spatial::image_spread`]): a live body's angular
    /// structure keeps the acoustic image compact (≈0.70–0.77 in the
    /// reference simulator), while a point-source replay collapses the
    /// array's angular diversity and the image flattens toward the
    /// uniform limit (≈0.85–0.92, where 1.0 is a perfectly flat
    /// image). Attempts measuring above the ceiling are rejected as
    /// replays.
    pub max_coherence: f64,
}

impl Default for SpatialCheckConfig {
    fn default() -> Self {
        SpatialCheckConfig {
            enabled: false,
            max_coherence: 0.82,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PipelineConfig {
    /// Probing-beep parameters.
    pub beep: BeepConfig,
    /// Distance-estimation parameters.
    pub distance: DistanceConfig,
    /// Imaging-plane parameters.
    pub imaging: ImagingConfig,
    /// Band-pass filter order (per paper §V-B a 2–3 kHz Butterworth).
    pub bandpass_order: usize,
    /// Source of the MVDR noise covariance.
    pub covariance: CovarianceMode,
    /// Channel-health screening thresholds for degraded-mode imaging.
    pub health: HealthConfig,
    /// Anti-replay spatial-coherence screen (off by default).
    pub spatial: SpatialCheckConfig,
    /// Worker threads for the imaging hot paths: `0` uses the machine's
    /// available parallelism, `1` forces the serial reference path,
    /// `n ≥ 2` uses exactly `n` threads. Results are bit-identical at
    /// every setting.
    pub threads: usize,
}

impl PipelineConfig {
    /// The paper's configuration with the default (CPU-sized) grid.
    pub fn paper() -> Self {
        PipelineConfig {
            beep: BeepConfig::paper(),
            distance: DistanceConfig::default(),
            imaging: ImagingConfig::default(),
            bandpass_order: 4,
            covariance: CovarianceMode::Isotropic,
            health: HealthConfig::default(),
            spatial: SpatialCheckConfig::default(),
            threads: 0,
        }
    }

    /// This configuration with a different thread count (see
    /// [`PipelineConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_beep_parameters() {
        let b = BeepConfig::paper();
        assert_eq!(b.center_frequency(), 2_500.0);
        assert_eq!(b.chirp_samples(), 96);
        assert_eq!(b.chirp().len(), 96);
        assert_eq!(b.interval, 0.5);
    }

    #[test]
    fn default_config_is_paper_config() {
        assert_eq!(PipelineConfig::default().beep, BeepConfig::paper());
    }

    #[test]
    fn imaging_grid_geometry() {
        let cfg = ImagingConfig::default();
        assert_eq!(cfg.half_extent(), 0.8);
        // Centre cells straddle the origin.
        let (x, z) = cfg.cell_center(16, 16);
        assert!((x - 0.025).abs() < 1e-12);
        assert!((z + 0.025).abs() < 1e-12);
        // Top-left corner: most negative x, most positive z.
        let (x0, z0) = cfg.cell_center(0, 0);
        assert!(x0 < 0.0 && z0 > 0.0);
    }

    #[test]
    fn paper_full_grid_matches_paper_feasibility_study() {
        let cfg = ImagingConfig::paper_full();
        assert_eq!(cfg.grid_n * cfg.grid_n, 32_400);
        assert!((cfg.grid_spacing - 0.01).abs() < 1e-12);
    }

    #[test]
    fn distance_defaults_match_section_v_b() {
        let d = DistanceConfig::default();
        assert!((d.azimuth - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(d.elevation >= std::f64::consts::FRAC_PI_3);
        assert!(d.elevation <= 2.0 * std::f64::consts::FRAC_PI_3);
        assert_eq!(d.chirp_period, 0.002);
        assert_eq!(d.echo_period, 0.010);
    }
}
