//! EchoImage: user authentication on smart speakers using acoustic
//! signals — the core pipeline of the ICDCS 2023 paper, reproduced in
//! Rust.
//!
//! A smart speaker emits a short 2–3 kHz chirp ("beep"), its microphone
//! array records the echoes bouncing off the user's body, and the system:
//!
//! 1. **Estimates the user's distance** ([`distance`], paper §V-B) by
//!    steering an MVDR beam at the upper body and matched-filtering the
//!    beamformed signal against the transmitted chirp,
//! 2. **Constructs an acoustic image** ([`imaging`], §V-C): a virtual
//!    imaging plane is erected at the estimated distance, the beam scans
//!    every grid cell, and each pixel is the energy of the time-gated
//!    echo from that cell's direction,
//! 3. **Extracts features** ([`features`], §V-D) with a frozen
//!    convolutional network (transfer-learning stand-in),
//! 4. **Authenticates** ([`auth`], §V-E) with a one-class SVM spoofer
//!    gate followed by an n-class SVM user classifier,
//! 5. Optionally **augments enrolment data** ([`augment`], §V-F) by
//!    re-projecting images to other distances with the inverse-square
//!    law.
//!
//! [`pipeline::EchoImagePipeline`] ties the stages together.
//!
//! # Example
//!
//! ```
//! use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
//! use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
//!
//! // Simulate a user standing 0.7 m in front of a smart speaker.
//! let scene = Scene::new(SceneConfig::laboratory_quiet(1));
//! let user = BodyModel::from_seed(99);
//! let captures = scene.capture_train(&user, &Placement::standing_front(0.7), 0, 4, 0);
//!
//! let pipeline = EchoImagePipeline::new(PipelineConfig::default());
//! let estimate = pipeline.estimate_distance(&captures).unwrap();
//! assert!((estimate.horizontal_distance - 0.7).abs() < 0.2);
//!
//! let image = pipeline.acoustic_image(&captures[0], estimate.horizontal_distance).unwrap();
//! assert_eq!(image.width(), pipeline.config().imaging.grid_n);
//! ```

pub mod augment;
pub mod auth;
pub mod config;
pub mod distance;
pub mod enrollment;
mod error;
pub mod features;
pub mod fusion;
pub mod health;
pub mod imaging;
pub mod par;
pub mod pipeline;
pub mod spatial;
pub mod steering_cache;
pub mod store;
pub mod template_cache;

pub use auth::{AuthDecision, Authenticator, RetryPolicy};
pub use config::{BeepConfig, ImagingConfig, PipelineConfig};
pub use distance::DistanceEstimate;
pub use error::EchoImageError;
pub use health::{ChannelFlaw, ChannelHealth, HealthConfig};
pub use pipeline::EchoImagePipeline;
