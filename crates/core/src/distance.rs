//! User–array distance estimation (paper §V-B).
//!
//! The estimator steers an MVDR beam at an arbitrary patch of the user's
//! upper body (θ = π/2, φ ∈ [π/3, 2π/3]), matched-filters the beamformed
//! signal against the transmitted chirp (Eq. 9), accumulates the squared
//! correlation envelopes over L beeps (Eq. 10), and reads the geometry
//! off the peaks: the first peak τ₁ is the direct speaker→mic chirp, the
//! strongest peak in the echo period is the body echo τ_w′, and the
//! slant distance is `D_f = τ·c/2`, projected to the horizontal
//! user–array distance `D_p = D_f·sin φ·sin θ`.
//!
//! One refinement over the paper's description: echo delays are measured
//! *relative to the direct-path peak* and corrected by the known
//! speaker→mic path length. Both peaks pass through the same band-pass
//! filter, so its group delay cancels — absolute peak positions would be
//! biased by it.

use crate::config::{DistanceConfig, PipelineConfig};
use crate::error::EchoImageError;
use crate::template_cache::chirp_template_plan_classified;
use echo_array::{Direction, MicArray};
use echo_beamform::{apply_weights, mvdr_weights, SpatialCovariance};
use echo_dsp::correlate::CorrelationScratch;
use echo_dsp::hilbert::{analytic_signal_padded, analytic_signal_padded_with, moving_average};
use echo_dsp::peaks::{find_peaks, strongest_peak_in, Peak};
use echo_dsp::FftScratch;
use echo_dsp::{Complex, SPEED_OF_SOUND};
use echo_obs::TraceCtx;
use echo_sim::BeepCapture;

/// The result of distance estimation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistanceEstimate {
    /// Slant distance `D_f` from the array to the steered body patch,
    /// metres.
    pub slant_distance: f64,
    /// Horizontal user–array distance `D_p = D_f·sinφ·sinθ`, metres.
    pub horizontal_distance: f64,
    /// Sample index of the direct-path peak τ₁ in the accumulated
    /// envelope.
    pub direct_peak: usize,
    /// Sample index of the detected body-echo peak τ_w′.
    pub echo_peak: usize,
    /// The accumulated envelope `E(t)` (Eq. 10), for diagnostics and the
    /// paper's Fig. 5.
    pub envelope: Vec<f64>,
    /// All detected peaks (the paper's `MaxSet`).
    pub peaks: Vec<Peak>,
}

/// Estimates the user–array distance from `L` band-passed beep captures.
///
/// `array` must describe the geometry the captures were recorded with.
///
/// # Errors
///
/// * [`EchoImageError::NoCaptures`] — `captures` is empty.
/// * [`EchoImageError::InconsistentCaptures`] — captures disagree in shape.
/// * [`EchoImageError::DirectPathNotFound`] — no peak qualifies as the
///   direct chirp.
/// * [`EchoImageError::EchoNotFound`] — the echo period contains no peak.
/// * [`EchoImageError::Beamforming`] — MVDR weight design failed.
pub fn estimate_distance(
    captures: &[BeepCapture],
    array: &MicArray,
    config: &PipelineConfig,
) -> Result<DistanceEstimate, EchoImageError> {
    estimate_distance_traced(captures, array, config, TraceCtx::none())
}

/// [`estimate_distance`] recording a `stage.distance` trace span under
/// `ctx` (template-cache hit flag, estimated horizontal distance). The
/// estimator runs on the serial coordinating path, so the cache-hit
/// attribute is deterministic for a fixed workload and cache state.
pub fn estimate_distance_traced(
    captures: &[BeepCapture],
    array: &MicArray,
    config: &PipelineConfig,
    ctx: TraceCtx,
) -> Result<DistanceEstimate, EchoImageError> {
    let first = captures.first().ok_or(EchoImageError::NoCaptures)?;
    let fs = first.sample_rate();
    let n = first.len();
    let m = first.num_channels();
    if captures
        .iter()
        .any(|c| c.len() != n || c.num_channels() != m || c.sample_rate() != fs)
    {
        return Err(EchoImageError::InconsistentCaptures);
    }
    if m != array.len() {
        return Err(EchoImageError::InvalidParameter(
            "array geometry does not match the capture channel count",
        ));
    }
    if n == 0 {
        return Err(EchoImageError::InvalidParameter("captures hold no samples"));
    }
    let _span = echo_obs::span!("stage.distance");
    let mut tspan = ctx.child("stage.distance");
    tspan.attr_u64("beeps", captures.len() as u64);
    echo_obs::counter!("distance.estimates").inc();
    // Which SIMD path the kernels below run on. Gauge only — traces and
    // audits stay bit-identical across dispatch modes by contract.
    echo_dsp::simd::record_dispatch();

    let dcfg = &config.distance;
    let look = Direction::new(dcfg.azimuth, dcfg.elevation);
    let f0 = config.beep.center_frequency();
    let steering = array.steering_vector(look, f0);

    // Matched-filter plan for the analytic chirp template, shared
    // process-wide (output bit-identical to the per-call template path).
    let (chirp_plan, template_hit) = chirp_template_plan_classified(&config.beep);
    tspan.attr_bool("template_cache_hit", template_hit);

    // One noise covariance for the whole train: pooling every beep's
    // preroll gives a far stabler estimate than any single 10 ms window,
    // and the paper's ρ_n is likewise a single background-noise
    // statistic, not a per-beep one.
    let cov = resolve_covariance(captures, array, config);
    let weights = mvdr_weights(&cov, &steering)?;

    // Accumulate E(t) = (1/L) Σ |E_l(t)|² (Eq. 10).
    let mut accumulated = vec![0.0f64; n];
    let mut hilbert_scratch = FftScratch::new();
    let mut corr_scratch = CorrelationScratch::new();
    // The padded analytic signal keeps every per-channel transform on
    // the radix-2 path (captures are rarely power-of-two length, and
    // Bluestein costs ~5× a direct pair). The envelope is read well
    // inside the capture, where the padded and exact transforms agree
    // to the accumulation noise floor.
    for capture in captures {
        let analytic: Vec<Vec<Complex>> = (0..m)
            .map(|ch| analytic_signal_padded_with(capture.channel(ch), &mut hilbert_scratch))
            .collect();
        let beamformed = apply_weights(&analytic, &weights);
        // |C_l(t)| of the analytic correlation *is* the envelope E_l(t).
        let correlation = chirp_plan.matched_filter_complex_with(&beamformed, &mut corr_scratch);
        echo_dsp::simd::accum_norm_sqr(&mut accumulated, &correlation);
    }
    let l = captures.len() as f64;
    for v in &mut accumulated {
        *v /= l;
    }

    let estimate = locate_peaks(&accumulated, fs, first.preroll(), dcfg, config);
    if let Ok(est) = &estimate {
        tspan.attr_f64("horizontal_m", est.horizontal_distance);
    }
    estimate
}

/// Produces the MVDR noise covariance according to the configured
/// [`crate::config::CovarianceMode`].
pub fn resolve_covariance(
    captures: &[BeepCapture],
    array: &MicArray,
    config: &PipelineConfig,
) -> SpatialCovariance {
    use crate::config::CovarianceMode;
    match config.covariance {
        CovarianceMode::Isotropic => SpatialCovariance::isotropic(
            array,
            config.beep.center_frequency(),
            SPEED_OF_SOUND,
            ROBUST_LOADING,
        ),
        CovarianceMode::Measured => noise_covariance(captures),
        CovarianceMode::Identity => SpatialCovariance::identity(array.len()),
    }
}

/// Pools the (clean first half of the) noise-only prerolls of every
/// capture into one spatial covariance estimate.
///
/// Only the first half of each preroll is used: zero-phase band-passing
/// smears the strong direct chirp a little way backwards in time, and a
/// signal-contaminated covariance would make MVDR cancel the very echoes
/// being ranged (signal self-cancellation).
pub fn noise_covariance(captures: &[BeepCapture]) -> SpatialCovariance {
    let m = captures.first().map_or(1, |c| c.num_channels());
    let mut pooled: Vec<Vec<Complex>> = vec![Vec::new(); m];
    for capture in captures {
        let clean = capture.preroll() / 2;
        if clean < 32 {
            continue;
        }
        for (ch, pool) in pooled.iter_mut().enumerate() {
            let analytic = analytic_signal_padded(&capture.channel(ch)[..capture.preroll()]);
            pool.extend_from_slice(&analytic[..clean]);
        }
    }
    if pooled[0].len() < 32 {
        SpatialCovariance::identity(m)
    } else {
        // Robust-MVDR loading: in-band diffuse noise on a small aperture
        // yields a near-singular coherence matrix whose inverse is
        // superdirective — sharp accidental nulls right next to the look
        // direction. Heavy diagonal loading trades a little noise
        // suppression for a well-behaved beam.
        SpatialCovariance::from_snapshots(&pooled, ROBUST_LOADING)
    }
}

/// Diagonal loading used for the pooled noise covariance (robust MVDR).
pub const ROBUST_LOADING: f64 = 0.05;

/// Peak logic shared with diagnostics: finds τ₁ and τ_w′ in an envelope
/// and converts to distances.
fn locate_peaks(
    envelope: &[f64],
    fs: f64,
    preroll: usize,
    dcfg: &DistanceConfig,
    config: &PipelineConfig,
) -> Result<DistanceEstimate, EchoImageError> {
    let max = echo_dsp::simd::max_f64(envelope).max(0.0);
    if max <= 0.0 {
        return Err(EchoImageError::DirectPathNotFound);
    }
    let peaks = find_peaks(
        envelope,
        dcfg.peak_distance,
        dcfg.peak_threshold_ratio * max,
    );
    // τ₁: the chirp travelling directly from the speaker to the
    // microphones. The device knows when it emitted the beep (the end of
    // the preroll) and its own speaker→mic geometry, so the direct peak
    // is the strongest peak within a couple of milliseconds of the
    // expected arrival — not blindly the first peak anywhere, which a
    // noise ripple could claim once MVDR has suppressed the (off-look)
    // direct path.
    let expect = preroll + (dcfg.direct_path_length / SPEED_OF_SOUND * fs) as usize;
    let lo = expect.saturating_sub((0.001 * fs) as usize);
    let hi = (expect + (0.002 * fs) as usize).min(envelope.len());
    let direct = strongest_peak_in(&peaks, lo, hi).ok_or(EchoImageError::DirectPathNotFound)?;

    let chirp_period = (dcfg.chirp_period * fs).round() as usize;
    let echo_period = (dcfg.echo_period * fs).round() as usize;
    let echo_start = direct.index + chirp_period;
    let echo_end = (echo_start + echo_period).min(envelope.len());
    if echo_start >= echo_end {
        return Err(EchoImageError::EchoNotFound);
    }
    // Guard against degenerate windows, then locate the body echo as the
    // leading edge of the strongest smoothed lobe: lobe maxima wander
    // with coherent speckle, leading edges do not.
    let smooth_w = ((dcfg.envelope_smoothing * fs).round() as usize).max(1);
    let smoothed = moving_average(envelope, smooth_w);
    let window = &smoothed[echo_start..echo_end];
    // The window opens on the decaying skirt of the direct chirp. Walk
    // down that initial decay first; the echo lobe must rise after it
    // (an empty room never rises above the noise floor again).
    let mut skirt_end = 0usize;
    while skirt_end + 1 < window.len() && window[skirt_end + 1] <= window[skirt_end] {
        skirt_end += 1;
    }
    if skirt_end + 1 >= window.len() {
        return Err(EchoImageError::EchoNotFound);
    }
    let (lobe_off, &lobe_max) = window[skirt_end..]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, v)| (i + skirt_end, v))
        .expect("window checked non-empty");
    // Echo validity: the lobe must clear both the relative threshold and
    // the matched-filter noise floor measured on the (signal-free) early
    // preroll — otherwise an empty room would "range" its own noise.
    let clean_preroll = preroll.saturating_sub(2 * chirp_period);
    let preroll_floor = if clean_preroll > 16 {
        echo_dsp::simd::max_f64(&smoothed[..clean_preroll]).max(0.0)
    } else {
        0.0
    };
    let noise_floor = (dcfg.peak_threshold_ratio * max).max(4.0 * preroll_floor);
    if lobe_max <= noise_floor {
        return Err(EchoImageError::EchoNotFound);
    }
    let threshold = dcfg.echo_onset_fraction * lobe_max;
    let mut edge = lobe_off;
    while edge > skirt_end && window[edge - 1] >= threshold {
        edge -= 1;
    }
    // The echo time is the midpoint between the lobe's leading edge and
    // its maximum: the edge alone fires early by the smoothing width,
    // the max alone wanders with speckle; their midpoint is both stable
    // and centred on the echo onset.
    let echo_idx = echo_start + (edge + lobe_off) / 2;
    let echo = Peak {
        index: echo_idx,
        value: envelope[echo_idx],
    };
    // Keep the strongest raw peak available for diagnostics (Fig. 5).
    let _ = strongest_peak_in(&peaks, echo_start, echo_end);

    // Delay relative to the direct peak, plus the known speaker→mic path,
    // is the round-trip time to the dominant body patch.
    let round_trip =
        (echo.index - direct.index) as f64 / fs + dcfg.direct_path_length / SPEED_OF_SOUND;
    let slant = round_trip * SPEED_OF_SOUND / 2.0;
    // Project D_f to the horizontal distance D_p = D_f·sinφ·sinθ with the
    // φ of the *echoing patch*: the chest sits `echo_height_offset` above
    // the array and its bulge brings the onset `surface_onset_correction`
    // closer, so sinφ = √(1 − (Δz/D)²) with D the corrected slant.
    let corrected = slant + dcfg.surface_onset_correction;
    let dz = dcfg.echo_height_offset;
    let sin_phi = if corrected > dz {
        (1.0 - (dz / corrected) * (dz / corrected)).sqrt()
    } else {
        dcfg.elevation.sin()
    };
    let horizontal = corrected * sin_phi * dcfg.azimuth.sin();
    let _ = config;
    let _ = slant;

    Ok(DistanceEstimate {
        // Report the onset-corrected slant (the physical distance to the
        // echoing patch), so D_f ≥ D_p as in the paper's geometry.
        slant_distance: corrected,
        horizontal_distance: horizontal,
        direct_peak: direct.index,
        echo_peak: echo.index,
        envelope: envelope.to_vec(),
        peaks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EchoImagePipeline;
    use echo_sim::{BodyModel, Placement, Scene, SceneConfig};

    fn estimate_at(distance: f64, beeps: usize) -> DistanceEstimate {
        let scene = Scene::new(SceneConfig::laboratory_quiet(21));
        let body = BodyModel::from_seed(77);
        let captures =
            scene.capture_train(&body, &Placement::standing_front(distance), 0, beeps, 0);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let filtered: Vec<BeepCapture> = captures.iter().map(|c| pipeline.preprocess(c)).collect();
        estimate_distance(&filtered, &MicArray::respeaker_6(), pipeline.config()).unwrap()
    }

    #[test]
    fn feasibility_study_geometry() {
        // Paper §V-B feasibility: user at 0.6 m, θ = π/2, φ = π/3 gives
        // D_f ≈ 0.68 m and D_p ≈ 0.58–0.6 m.
        let est = estimate_at(0.6, 10);
        assert!(
            (est.horizontal_distance - 0.6).abs() < 0.12,
            "D_p = {}",
            est.horizontal_distance
        );
        assert!(
            est.slant_distance + 0.1 > est.horizontal_distance,
            "horizontal projection cannot exceed the onset-corrected slant"
        );
    }

    #[test]
    fn estimates_track_true_distance() {
        for d in [0.7, 1.0, 1.3] {
            let est = estimate_at(d, 8);
            assert!(
                (est.horizontal_distance - d).abs() < 0.18,
                "true {d}, got {}",
                est.horizontal_distance
            );
        }
    }

    #[test]
    fn direct_peak_precedes_echo_peak() {
        let est = estimate_at(0.7, 4);
        assert!(est.direct_peak < est.echo_peak);
        // Direct peak sits near the preroll boundary (480 samples).
        assert!((est.direct_peak as i64 - 480).unsigned_abs() < 60);
    }

    #[test]
    fn more_beeps_stabilise_the_estimate() {
        // Eq. 10's averaging: estimates from many beeps vary less.
        let spread = |l: usize| {
            let scene = Scene::new(SceneConfig::laboratory_quiet(33));
            let body = BodyModel::from_seed(55);
            let pipeline = EchoImagePipeline::new(PipelineConfig::default());
            let mut estimates = Vec::new();
            for trial in 0..5 {
                let captures = scene.capture_train(
                    &body,
                    &Placement::standing_front(0.8),
                    0,
                    l,
                    (trial * 100) as u64,
                );
                let filtered: Vec<BeepCapture> =
                    captures.iter().map(|c| pipeline.preprocess(c)).collect();
                let est = estimate_distance(&filtered, &MicArray::respeaker_6(), pipeline.config())
                    .unwrap();
                estimates.push(est.horizontal_distance);
            }
            let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
            estimates
                .iter()
                .map(|e| (e - mean).abs())
                .fold(0.0f64, f64::max)
        };
        // Averaging over more beeps must not hurt; it usually helps.
        assert!(spread(6) <= spread(1) + 0.02);
    }

    #[test]
    fn empty_captures_error() {
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let err = estimate_distance(&[], &MicArray::respeaker_6(), pipeline.config()).unwrap_err();
        assert_eq!(err, EchoImageError::NoCaptures);
    }

    #[test]
    fn inconsistent_captures_error() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(1));
        let body = BodyModel::from_seed(1);
        let a = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
        let b = a.map_channels(|c| c.to_vec());
        // Truncate one capture to a different length.
        let short = BeepCapture::new(
            b.channels()
                .iter()
                .map(|c| c[..c.len() - 10].to_vec())
                .collect(),
            b.sample_rate(),
            b.preroll(),
        );
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let err = estimate_distance(&[a, short], &MicArray::respeaker_6(), pipeline.config())
            .unwrap_err();
        assert_eq!(err, EchoImageError::InconsistentCaptures);
    }

    #[test]
    fn zero_sample_captures_error_instead_of_panicking() {
        let empty = BeepCapture::new(vec![Vec::new(); 6], 48_000.0, 0);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let err =
            estimate_distance(&[empty], &MicArray::respeaker_6(), pipeline.config()).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
    }

    #[test]
    fn silence_reports_missing_direct_path() {
        let silent = BeepCapture::new(vec![vec![0.0; 4_000]; 6], 48_000.0, 480);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let err =
            estimate_distance(&[silent], &MicArray::respeaker_6(), pipeline.config()).unwrap_err();
        assert_eq!(err, EchoImageError::DirectPathNotFound);
    }

    #[test]
    fn wrong_array_geometry_is_rejected() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(1));
        let body = BodyModel::from_seed(1);
        let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
        let wrong = MicArray::linear(4, 0.04);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let err = estimate_distance(&[cap], &wrong, pipeline.config()).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
    }
}
