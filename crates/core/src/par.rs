//! A small deterministic work pool for the imaging and evaluation hot
//! paths.
//!
//! [`parallel_map_indexed`] fans a slice out over scoped worker threads
//! and returns results **in input order**, so a parallel map is
//! bit-identical to its serial counterpart: the same closure runs on the
//! same inputs, and reassembly is by index, never by completion time.
//! Work is handed out dynamically (an atomic cursor), which keeps cores
//! busy even when per-item cost is skewed — in imaging, rows crossing
//! the user's body gate many more samples than empty border rows.
//!
//! Thread counts follow one convention everywhere in this workspace:
//! `0` means "use [`std::thread::available_parallelism`]", `1` forces
//! the plain serial loop (no threads spawned at all), and `n ≥ 2` spawns
//! `n` workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` becomes the machine's
/// available parallelism (at least 1), anything else is returned as-is.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of workers the pool will actually run for `items` work items:
/// the requested count (per [`effective_threads`]), clamped to the
/// machine's available parallelism and the item count.
///
/// The parallelism clamp is what fixes the `batch_16_images`
/// anti-scaling: the pool's work is CPU-bound and never blocks, so
/// requesting more workers than cores only buys spawn overhead and
/// context switches — on a single-core host an explicit `threads = 4`
/// now takes the same serial path as `threads = 1`. Results are
/// bit-identical at every worker count either way (reassembly is by
/// index), so the clamp changes scheduling, never output.
pub fn worker_count(requested: usize, items: usize) -> usize {
    effective_threads(requested)
        .min(available_parallelism())
        .min(items)
}

/// Maps `f` over `items` on up to `threads` scoped workers (resolved by
/// [`worker_count`]) and returns the results in input order.
///
/// With `threads <= 1` (or fewer than two items) this is exactly
/// `items.iter().enumerate().map(..).collect()` — no threads, no
/// channels — which is what makes `threads = 1` a trustworthy serial
/// reference for determinism tests.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have joined.
pub fn parallel_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = worker_count(threads, items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Workers buffer (index, result) pairs locally and hand the whole
    // batch back through their join handle — no per-item channel sends,
    // and the batch allocation happens once per worker, not once per
    // mapped item.
    let cursor = AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in batches.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let serial = parallel_map_indexed(&items, 1, f);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map_indexed(&items, threads, f), serial);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_indexed(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(parallel_map_indexed(&[9u32], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn skewed_workloads_still_return_in_order() {
        // Early items sleep longest: completion order is roughly the
        // reverse of input order, so index-based reassembly is exercised.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_indexed(&items, 4, |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i as u64));
            *x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_clamps_to_machine_and_items() {
        let cores = effective_threads(0);
        assert_eq!(worker_count(0, 1000), cores);
        assert!(worker_count(4 * cores + 1, 1000) <= cores);
        assert_eq!(worker_count(8, 1), 1);
        assert_eq!(worker_count(1, 1000), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = parallel_map_indexed(&items, 4, |_, x| {
            if *x == 5 {
                panic!("boom");
            }
            *x
        });
    }
}
