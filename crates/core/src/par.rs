//! A small deterministic work pool for the imaging and evaluation hot
//! paths.
//!
//! [`parallel_map_indexed`] fans a slice out over scoped worker threads
//! and returns results **in input order**, so a parallel map is
//! bit-identical to its serial counterpart: the same closure runs on the
//! same inputs, and reassembly is by index, never by completion time.
//! Work is handed out dynamically (an atomic cursor), which keeps cores
//! busy even when per-item cost is skewed — in imaging, rows crossing
//! the user's body gate many more samples than empty border rows.
//!
//! Thread counts follow one convention everywhere in this workspace:
//! `0` means "use [`std::thread::available_parallelism`]", `1` forces
//! the plain serial loop (no threads spawned at all), and `n ≥ 2` spawns
//! `n` workers.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The environment variable naming the worker-thread count used by
/// every fan-out in the workspace (`0` = available parallelism, `1` =
/// serial, `n ≥ 2` = exactly `n` workers).
pub const THREADS_ENV: &str = "ECHOIMAGE_THREADS";

/// Upper bound accepted for an explicit thread count. Far above any
/// real machine; its purpose is to reject garbage (`ECHOIMAGE_THREADS=
/// 99999999`) at parse time instead of silently coercing it — spawning
/// is clamped to available parallelism anyway, but a value this large
/// is a configuration mistake worth surfacing.
pub const MAX_THREADS: usize = 1024;

/// A thread-count string that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsParseError {
    /// The value is not a base-10 unsigned integer.
    NotANumber {
        /// The offending string, verbatim.
        value: String,
    },
    /// The value parsed but exceeds [`MAX_THREADS`].
    OutOfRange {
        /// The parsed count.
        value: usize,
    },
}

impl fmt::Display for ThreadsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadsParseError::NotANumber { value } => write!(
                f,
                "{THREADS_ENV}: `{value}` is not a thread count \
                 (want 0 = auto, 1 = serial, or an explicit worker count)"
            ),
            ThreadsParseError::OutOfRange { value } => write!(
                f,
                "{THREADS_ENV}: {value} exceeds the maximum of {MAX_THREADS} threads"
            ),
        }
    }
}

impl std::error::Error for ThreadsParseError {}

/// Parses a thread-count string under the workspace convention,
/// rejecting non-numeric and out-of-range values instead of silently
/// coercing them.
///
/// # Errors
///
/// [`ThreadsParseError::NotANumber`] for anything that is not a base-10
/// unsigned integer, [`ThreadsParseError::OutOfRange`] past
/// [`MAX_THREADS`].
pub fn parse_threads(s: &str) -> Result<usize, ThreadsParseError> {
    let n: usize = s
        .trim()
        .parse()
        .map_err(|_| ThreadsParseError::NotANumber {
            value: s.to_string(),
        })?;
    if n > MAX_THREADS {
        return Err(ThreadsParseError::OutOfRange { value: n });
    }
    Ok(n)
}

/// Reads [`THREADS_ENV`] with validation: unset means `0` (auto), a set
/// value must parse under [`parse_threads`].
///
/// # Errors
///
/// See [`parse_threads`]; a set-but-invalid value is an error, never a
/// silent fallback.
pub fn threads_from_env() -> Result<usize, ThreadsParseError> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads(&v),
        Err(_) => Ok(0),
    }
}

/// Resolves a requested thread count: `0` becomes the machine's
/// available parallelism (at least 1), anything else is returned as-is.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of workers the pool will actually run for `items` work items:
/// the requested count (per [`effective_threads`]), clamped to the
/// machine's available parallelism and the item count.
///
/// The parallelism clamp is what fixes the `batch_16_images`
/// anti-scaling: the pool's work is CPU-bound and never blocks, so
/// requesting more workers than cores only buys spawn overhead and
/// context switches — on a single-core host an explicit `threads = 4`
/// now takes the same serial path as `threads = 1`. Results are
/// bit-identical at every worker count either way (reassembly is by
/// index), so the clamp changes scheduling, never output.
pub fn worker_count(requested: usize, items: usize) -> usize {
    effective_threads(requested)
        .min(available_parallelism())
        .min(items)
}

/// Maps `f` over `items` on up to `threads` scoped workers (resolved by
/// [`worker_count`]) and returns the results in input order.
///
/// With `threads <= 1` (or fewer than two items) this is exactly
/// `items.iter().enumerate().map(..).collect()` — no threads, no
/// channels — which is what makes `threads = 1` a trustworthy serial
/// reference for determinism tests.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have joined.
pub fn parallel_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = worker_count(threads, items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Workers buffer (index, result) pairs locally and hand the whole
    // batch back through their join handle — no per-item channel sends,
    // and the batch allocation happens once per worker, not once per
    // mapped item.
    let cursor = AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in batches.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let serial = parallel_map_indexed(&items, 1, f);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map_indexed(&items, threads, f), serial);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_indexed(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(parallel_map_indexed(&[9u32], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn skewed_workloads_still_return_in_order() {
        // Early items sleep longest: completion order is roughly the
        // reverse of input order, so index-based reassembly is exercised.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_indexed(&items, 4, |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i as u64));
            *x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_clamps_to_machine_and_items() {
        let cores = effective_threads(0);
        assert_eq!(worker_count(0, 1000), cores);
        assert!(worker_count(4 * cores + 1, 1000) <= cores);
        assert_eq!(worker_count(8, 1), 1);
        assert_eq!(worker_count(1, 1000), 1);
    }

    #[test]
    fn parse_threads_accepts_the_convention_range() {
        assert_eq!(parse_threads("0"), Ok(0));
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("1024"), Ok(MAX_THREADS));
    }

    #[test]
    fn parse_threads_rejects_garbage_with_typed_errors() {
        assert!(matches!(
            parse_threads("four"),
            Err(ThreadsParseError::NotANumber { .. })
        ));
        assert!(matches!(
            parse_threads("-2"),
            Err(ThreadsParseError::NotANumber { .. })
        ));
        assert!(matches!(
            parse_threads(""),
            Err(ThreadsParseError::NotANumber { .. })
        ));
        assert!(matches!(
            parse_threads("1025"),
            Err(ThreadsParseError::OutOfRange { value: 1025 })
        ));
        // The message names the env var so a daemon log is actionable.
        let msg = parse_threads("zzz").unwrap_err().to_string();
        assert!(msg.contains(THREADS_ENV), "{msg}");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = parallel_map_indexed(&items, 4, |_, x| {
            if *x == 5 {
                panic!("boom");
            }
            *x
        });
    }
}
