//! A small deterministic work pool for the imaging and evaluation hot
//! paths.
//!
//! [`parallel_map_indexed`] fans a slice out over scoped worker threads
//! and returns results **in input order**, so a parallel map is
//! bit-identical to its serial counterpart: the same closure runs on the
//! same inputs, and reassembly is by index, never by completion time.
//! Work is handed out dynamically (an atomic cursor), which keeps cores
//! busy even when per-item cost is skewed — in imaging, rows crossing
//! the user's body gate many more samples than empty border rows.
//!
//! Thread counts follow one convention everywhere in this workspace:
//! `0` means "use [`std::thread::available_parallelism`]", `1` forces
//! the plain serial loop (no threads spawned at all), and `n ≥ 2` spawns
//! `n` workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` becomes the machine's
/// available parallelism (at least 1), anything else is returned as-is.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers (resolved by
/// [`effective_threads`]) and returns the results in input order.
///
/// With `threads <= 1` (or fewer than two items) this is exactly
/// `items.iter().enumerate().map(..).collect()` — no threads, no
/// channels — which is what makes `threads = 1` a trustworthy serial
/// reference for determinism tests.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have joined.
pub fn parallel_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let serial = parallel_map_indexed(&items, 1, f);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map_indexed(&items, threads, f), serial);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_indexed(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(parallel_map_indexed(&[9u32], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn skewed_workloads_still_return_in_order() {
        // Early items sleep longest: completion order is roughly the
        // reverse of input order, so index-based reassembly is exercised.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_indexed(&items, 4, |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i as u64));
            *x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = parallel_map_indexed(&items, 4, |_, x| {
            if *x == 5 {
                panic!("boom");
            }
            *x
        });
    }
}
