//! The end-to-end EchoImage pipeline (paper Fig. 3).
//!
//! [`EchoImagePipeline`] owns the configuration and the frozen feature
//! extractor and exposes each stage — band-pass preprocessing, distance
//! estimation, acoustic imaging, feature extraction — plus conveniences
//! that run a whole beep train through to feature vectors.

pub use crate::config::PipelineConfig;
use crate::distance::{estimate_distance, estimate_distance_traced, DistanceEstimate};
use crate::error::EchoImageError;
use crate::features::ImageFeatures;
use crate::health::ChannelHealth;
use crate::imaging::construct_image;
use crate::par::parallel_map_indexed;
use echo_array::MicArray;
use echo_dsp::filter::SosFilter;
use echo_ml::GrayImage;
use echo_obs::TraceCtx;
use echo_sim::BeepCapture;

/// The assembled EchoImage processing pipeline.
///
/// # Example
///
/// ```
/// use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
/// use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
///
/// let scene = Scene::new(SceneConfig::laboratory_quiet(4));
/// let user = BodyModel::from_seed(12);
/// let captures = scene.capture_train(&user, &Placement::standing_front(0.7), 0, 3, 0);
///
/// let pipeline = EchoImagePipeline::new(PipelineConfig::default());
/// let (images, estimate) = pipeline.images_from_train(&captures).unwrap();
/// assert_eq!(images.len(), 3);
/// assert!((estimate.horizontal_distance - 0.7).abs() < 0.2);
/// let features = pipeline.features(&images[0]);
/// assert!(!features.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EchoImagePipeline {
    config: PipelineConfig,
    array: MicArray,
    features: ImageFeatures,
    bandpass: SosFilter,
}

/// `None` when every channel is healthy (normal path applies); the
/// mic-subset captures and matching subset pipeline otherwise.
type DegradedRoute = Option<(Vec<BeepCapture>, EchoImagePipeline)>;

impl EchoImagePipeline {
    /// Builds the pipeline for the paper's prototype array geometry.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_array(config, MicArray::respeaker_6())
    }

    /// Builds the pipeline for a custom array geometry.
    pub fn with_array(config: PipelineConfig, array: MicArray) -> Self {
        let bandpass = SosFilter::butterworth_bandpass(
            config.bandpass_order.max(1),
            config.beep.f_start,
            config.beep.f_end,
            config.beep.sample_rate,
        );
        EchoImagePipeline {
            config,
            array,
            features: ImageFeatures::new(),
            bandpass,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The array geometry the pipeline assumes.
    pub fn array(&self) -> &MicArray {
        &self.array
    }

    /// The frozen feature extractor.
    pub fn feature_extractor(&self) -> &ImageFeatures {
        &self.features
    }

    /// Band-passes every channel to the probing band (zero-phase, so
    /// echo timing is unaffected).
    pub fn preprocess(&self, capture: &BeepCapture) -> BeepCapture {
        let _span = echo_obs::span!("stage.preprocess");
        capture.map_channels(|ch| self.bandpass.filtfilt(ch))
    }

    /// Estimates the user–array distance from raw captures
    /// (preprocessing included).
    ///
    /// # Errors
    ///
    /// See [`crate::distance::estimate_distance`].
    pub fn estimate_distance(
        &self,
        captures: &[BeepCapture],
    ) -> Result<DistanceEstimate, EchoImageError> {
        let filtered: Vec<BeepCapture> = captures.iter().map(|c| self.preprocess(c)).collect();
        estimate_distance(&filtered, &self.array, &self.config)
    }

    /// Constructs the acoustic image from one raw capture at a known
    /// horizontal distance (preprocessing included).
    ///
    /// # Errors
    ///
    /// See [`crate::imaging::construct_image`].
    pub fn acoustic_image(
        &self,
        capture: &BeepCapture,
        horizontal_distance: f64,
    ) -> Result<GrayImage, EchoImageError> {
        let filtered = self.preprocess(capture);
        construct_image(&filtered, &self.array, horizontal_distance, &self.config)
    }

    /// Full front half of the system: estimates the distance from the
    /// whole train, then builds one acoustic image per beep.
    ///
    /// # Errors
    ///
    /// Propagates distance-estimation and imaging errors.
    pub fn images_from_train(
        &self,
        captures: &[BeepCapture],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        let root = echo_obs::root_span("pipeline.images_from_train");
        let ctx = root.ctx();
        self.images_from_train_traced(ctx, captures)
    }

    /// [`EchoImagePipeline::images_from_train`] recording its stage
    /// spans as children of `ctx` instead of minting a fresh trace —
    /// the variant callers inside a traced attempt (auth, eval batches)
    /// use. Per-beep preprocess and imaging spans carry the beep index
    /// as their logical index.
    pub fn images_from_train_traced(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        echo_obs::counter!("pipeline.trains").inc();
        echo_obs::counter!("pipeline.beeps_imaged").add(captures.len() as u64);
        let filtered: Vec<BeepCapture> =
            parallel_map_indexed(captures, self.config.threads, |i, c| {
                let _t = ctx.child_at("stage.preprocess", i as u64);
                self.preprocess(c)
            });
        let estimate = estimate_distance_traced(&filtered, &self.array, &self.config, ctx)?;
        // One covariance for the whole train keeps the MVDR weights
        // identical across beeps, so image variation reflects the user,
        // not the covariance estimator.
        let cov = crate::distance::resolve_covariance(&filtered, &self.array, &self.config);
        // Fan out over beeps, which each image serially — one layer of
        // parallelism, not threads² workers.
        let inner = self.config.clone().with_threads(1);
        let images = parallel_map_indexed(&filtered, self.config.threads, |i, c| {
            crate::imaging::construct_image_with_covariance_traced(
                c,
                &self.array,
                estimate.horizontal_distance,
                &cov,
                &inner,
                ctx,
                i as u64,
            )
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok((images, estimate))
    }

    /// Like [`EchoImagePipeline::images_from_train`], but additionally
    /// constructs images at plane distances offset from the estimate by
    /// each of `plane_offsets` — true geometric re-imaging of the same
    /// captures, used at enrolment so the classifier sees the feature
    /// variation caused by distance-estimate jitter.
    ///
    /// Returns `(images, estimate)` where `images` holds, per capture,
    /// the image at the estimated plane followed by one per offset.
    ///
    /// # Errors
    ///
    /// Propagates distance-estimation and imaging errors.
    pub fn images_from_train_multi_plane(
        &self,
        captures: &[BeepCapture],
        plane_offsets: &[f64],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        let root = echo_obs::root_span("pipeline.images_multi_plane");
        let ctx = root.ctx();
        self.images_from_train_multi_plane_traced(ctx, captures, plane_offsets)
    }

    /// [`EchoImagePipeline::images_from_train_multi_plane`] under an
    /// existing trace context. Imaging spans use the flattened
    /// capture×plane job index as their logical index.
    pub fn images_from_train_multi_plane_traced(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
        plane_offsets: &[f64],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate), EchoImageError> {
        echo_obs::counter!("pipeline.trains").inc();
        echo_obs::counter!("pipeline.beeps_imaged").add(captures.len() as u64);
        let filtered: Vec<BeepCapture> =
            parallel_map_indexed(captures, self.config.threads, |i, c| {
                let _t = ctx.child_at("stage.preprocess", i as u64);
                self.preprocess(c)
            });
        let estimate = estimate_distance_traced(&filtered, &self.array, &self.config, ctx)?;
        let cov = crate::distance::resolve_covariance(&filtered, &self.array, &self.config);
        let mut planes = vec![estimate.horizontal_distance];
        planes.extend(
            plane_offsets
                .iter()
                .map(|o| (estimate.horizontal_distance + o).max(0.2)),
        );
        // Flatten the capture × plane grid into one job list so the
        // pool sees every unit of work at once; output order matches
        // the serial nested loop (capture-major).
        let jobs: Vec<(usize, f64)> = (0..filtered.len())
            .flat_map(|ci| planes.iter().map(move |&d| (ci, d)))
            .collect();
        let inner = self.config.clone().with_threads(1);
        let images = parallel_map_indexed(&jobs, self.config.threads, |i, &(ci, d)| {
            crate::imaging::construct_image_with_covariance_traced(
                &filtered[ci],
                &self.array,
                d,
                &cov,
                &inner,
                ctx,
                i as u64,
            )
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok((images, estimate))
    }

    /// Extracts the classification features of an acoustic image.
    pub fn features(&self, image: &GrayImage) -> Vec<f64> {
        self.features.extract(image)
    }

    /// Extracts features for a batch of images over the configured
    /// thread count (bit-identical to mapping [`EchoImagePipeline::features`]).
    pub fn features_batch(&self, images: &[GrayImage]) -> Vec<Vec<f64>> {
        self.features_batch_traced(TraceCtx::none(), images)
    }

    /// [`EchoImagePipeline::features_batch`] recording a
    /// `stage.features` trace span under `ctx`.
    pub fn features_batch_traced(&self, ctx: TraceCtx, images: &[GrayImage]) -> Vec<Vec<f64>> {
        let _span = echo_obs::span!("stage.features");
        let mut tspan = ctx.child("stage.features");
        tspan.attr_u64("images", images.len() as u64);
        echo_obs::counter!("pipeline.features_extracted").add(images.len() as u64);
        self.features
            .extract_batch_threaded(images, self.config.threads)
    }

    /// Runs a whole train to feature vectors (distance → images →
    /// features).
    ///
    /// # Errors
    ///
    /// Propagates distance-estimation and imaging errors.
    pub fn features_from_train(
        &self,
        captures: &[BeepCapture],
    ) -> Result<Vec<Vec<f64>>, EchoImageError> {
        let root = echo_obs::root_span("pipeline.features_from_train");
        let ctx = root.ctx();
        self.features_from_train_traced(ctx, captures)
    }

    /// [`EchoImagePipeline::features_from_train`] under an existing
    /// trace context.
    pub fn features_from_train_traced(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
    ) -> Result<Vec<Vec<f64>>, EchoImageError> {
        let (images, _) = self.images_from_train_traced(ctx, captures)?;
        Ok(self.features_batch_traced(ctx, &images))
    }

    /// Screens the train for channel faults.
    ///
    /// Pass **raw** captures: the band-pass filter would strip exactly
    /// the evidence the screen looks for (DC offsets, clipping rails,
    /// out-of-band bursts).
    ///
    /// # Errors
    ///
    /// See [`crate::health::screen_train`].
    pub fn screen_train(&self, captures: &[BeepCapture]) -> Result<ChannelHealth, EchoImageError> {
        crate::health::screen_train(captures, &self.config.health)
    }

    /// Screens the train and, when channels must be excised, builds the
    /// mic-subset captures and pipeline. `Ok((None, health))` means every
    /// channel passed and the normal path applies unchanged.
    fn degraded_route(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
    ) -> Result<(DegradedRoute, ChannelHealth), EchoImageError> {
        let mut tspan = ctx.child("stage.health_screen");
        let health = self.screen_train(captures)?;
        tspan.attr_u64("channels", health.num_channels() as u64);
        tspan.attr_u64("healthy", health.num_healthy() as u64);
        tspan.attr_u64("excised_mask", health.excised_mask());
        if health.all_healthy() {
            return Ok((None, health));
        }
        let healthy = health.healthy_indices();
        let required = self.config.health.min_mics.max(2);
        if healthy.len() < required {
            echo_obs::counter!("degraded.rejections").inc();
            tspan.attr_bool("rejected", true);
            return Err(EchoImageError::DegradedCapture {
                healthy: healthy.len(),
                required,
                mask: health.excised_mask(),
            });
        }
        echo_obs::counter!("degraded.activations").inc();
        let sub_captures: Vec<BeepCapture> = captures
            .iter()
            .map(|c| c.select_channels(&healthy))
            .collect();
        let sub_pipeline =
            EchoImagePipeline::with_array(self.config.clone(), self.array.subset(&healthy));
        Ok((Some((sub_captures, sub_pipeline)), health))
    }

    /// [`EchoImagePipeline::images_from_train`] with channel-health
    /// screening: faulted microphones are excised and the train is imaged
    /// from the surviving subset.
    ///
    /// When every channel passes the screen this delegates to the normal
    /// path, so healthy captures produce bit-identical images. When some
    /// channels fail but at least `max(min_mics, 2)` survive, the
    /// captures and the array geometry are both narrowed to the
    /// survivors and imaged as usual (the subset array has its own
    /// geometry fingerprint, so steering-field cache entries never mix).
    ///
    /// # Errors
    ///
    /// * [`EchoImageError::DegradedCapture`] — too few healthy
    ///   microphones; reject the capture and retry.
    /// * Everything [`EchoImagePipeline::images_from_train`] and
    ///   [`EchoImagePipeline::screen_train`] can return.
    pub fn images_from_train_degraded(
        &self,
        captures: &[BeepCapture],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate, ChannelHealth), EchoImageError> {
        let root = echo_obs::root_span("pipeline.images_from_train");
        let ctx = root.ctx();
        self.images_from_train_degraded_traced(ctx, captures)
    }

    /// [`EchoImagePipeline::images_from_train_degraded`] under an
    /// existing trace context.
    pub fn images_from_train_degraded_traced(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate, ChannelHealth), EchoImageError> {
        let (route, health) = self.degraded_route(ctx, captures)?;
        let (images, estimate) = match &route {
            None => self.images_from_train_traced(ctx, captures)?,
            Some((sub_captures, sub_pipeline)) => {
                sub_pipeline.images_from_train_traced(ctx, sub_captures)?
            }
        };
        Ok((images, estimate, health))
    }

    /// [`EchoImagePipeline::images_from_train_multi_plane`] through the
    /// degraded path — plane-diverse enrolment imaging that excises
    /// faulted microphones the same way
    /// [`EchoImagePipeline::images_from_train_degraded`] does.
    ///
    /// # Errors
    ///
    /// See [`EchoImagePipeline::images_from_train_degraded`].
    pub fn images_from_train_multi_plane_degraded(
        &self,
        captures: &[BeepCapture],
        plane_offsets: &[f64],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate, ChannelHealth), EchoImageError> {
        let root = echo_obs::root_span("pipeline.images_multi_plane");
        let ctx = root.ctx();
        self.images_from_train_multi_plane_degraded_traced(ctx, captures, plane_offsets)
    }

    /// [`EchoImagePipeline::images_from_train_multi_plane_degraded`]
    /// under an existing trace context.
    pub fn images_from_train_multi_plane_degraded_traced(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
        plane_offsets: &[f64],
    ) -> Result<(Vec<GrayImage>, DistanceEstimate, ChannelHealth), EchoImageError> {
        let (route, health) = self.degraded_route(ctx, captures)?;
        let (images, estimate) = match &route {
            None => self.images_from_train_multi_plane_traced(ctx, captures, plane_offsets)?,
            Some((sub_captures, sub_pipeline)) => sub_pipeline
                .images_from_train_multi_plane_traced(ctx, sub_captures, plane_offsets)?,
        };
        Ok((images, estimate, health))
    }

    /// [`EchoImagePipeline::features_from_train`] through the degraded
    /// path: screen, excise faulted microphones, image from the
    /// survivors, extract features.
    ///
    /// # Errors
    ///
    /// See [`EchoImagePipeline::images_from_train_degraded`].
    pub fn features_from_train_degraded(
        &self,
        captures: &[BeepCapture],
    ) -> Result<(Vec<Vec<f64>>, ChannelHealth), EchoImageError> {
        let root = echo_obs::root_span("pipeline.features_from_train");
        let ctx = root.ctx();
        self.features_from_train_degraded_traced(ctx, captures)
    }

    /// [`EchoImagePipeline::features_from_train_degraded`] under an
    /// existing trace context.
    pub fn features_from_train_degraded_traced(
        &self,
        ctx: TraceCtx,
        captures: &[BeepCapture],
    ) -> Result<(Vec<Vec<f64>>, ChannelHealth), EchoImageError> {
        let (images, _, health) = self.images_from_train_degraded_traced(ctx, captures)?;
        Ok((self.features_batch_traced(ctx, &images), health))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_sim::{BodyModel, Placement, Scene, SceneConfig};

    fn pipeline() -> EchoImagePipeline {
        EchoImagePipeline::new(PipelineConfig::default())
    }

    #[test]
    fn preprocess_removes_out_of_band_noise() {
        let scene = Scene::new(SceneConfig::with_environment(
            echo_sim::EnvironmentKind::Laboratory,
            echo_sim::NoiseKind::Traffic,
            3,
        ));
        let cap = scene.capture_empty(0, 0);
        let p = pipeline();
        let filtered = p.preprocess(&cap);
        // Traffic noise is sub-500 Hz: preroll energy should collapse.
        // Compare the first half of the preroll — the zero-phase filter
        // smears the direct chirp backwards into the preroll's tail.
        let half = cap.preroll() / 2;
        let raw = echo_dsp::stats::energy(&cap.noise_segments()[0][..half]);
        let clean = echo_dsp::stats::energy(&filtered.noise_segments()[0][..half]);
        assert!(clean < raw * 0.05, "raw {raw}, filtered {clean}");
        assert_eq!(filtered.preroll(), cap.preroll());
    }

    #[test]
    fn end_to_end_images_and_features() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(8));
        let body = BodyModel::from_seed(31);
        let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 2, 0);
        let p = pipeline();
        let (images, est) = p.images_from_train(&caps).unwrap();
        assert_eq!(images.len(), 2);
        assert!((est.horizontal_distance - 0.7).abs() < 0.2);
        let feats = p.features_from_train(&caps).unwrap();
        assert_eq!(feats.len(), 2);
        assert_eq!(feats[0].len(), p.feature_extractor().feature_len());
    }

    #[test]
    fn images_of_same_user_cluster_in_feature_space() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(8));
        let a = BodyModel::from_seed(41);
        let b = BodyModel::from_seed(42);
        let p = pipeline();
        let place = Placement::standing_front(0.7);
        let fa: Vec<Vec<f64>> = p
            .features_from_train(&scene.capture_train(&a, &place, 0, 2, 0))
            .unwrap();
        let fb: Vec<Vec<f64>> = p
            .features_from_train(&scene.capture_train(&b, &place, 0, 2, 0))
            .unwrap();
        let d = |x: &[f64], y: &[f64]| -> f64 {
            x.iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let intra = d(&fa[0], &fa[1]);
        let inter = d(&fa[0], &fb[0]);
        assert!(intra < inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn pipeline_errors_propagate() {
        let p = pipeline();
        assert!(p.estimate_distance(&[]).is_err());
        let silent = BeepCapture::new(vec![vec![0.0; 3_000]; 6], 48_000.0, 480);
        assert!(p.estimate_distance(&[silent]).is_err());
    }
}
