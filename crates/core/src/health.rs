//! Capture health screening: which microphones can be trusted?
//!
//! A single faulted channel silently poisons everything downstream — a
//! flatlined microphone biases the MVDR covariance, a DC pedestal leaks
//! through the steering arithmetic, a clipped channel decorrelates the
//! echoes. Before imaging, the pipeline screens each channel's
//! statistics (energy relative to its siblings, DC level, clip
//! fraction) and produces a [`ChannelHealth`] mask; degraded-mode
//! beamforming then images with the surviving subset (see
//! [`crate::pipeline::EchoImagePipeline::images_from_train_degraded`]).
//!
//! Screening runs on *raw* captures, before band-pass preprocessing:
//! the band-pass filter removes exactly the DC and out-of-band evidence
//! the screen needs.
//!
//! The thresholds are deliberately permissive — screening exists to
//! excise channels that would *poison* the image (dead, saturated,
//! DC-railed, interference-swamped), not to demand studio calibration.
//! Mild gain drift or clock skew passes the screen and degrades
//! gracefully instead; the fault-sweep experiment quantifies how
//! gracefully.

use crate::error::EchoImageError;
use echo_sim::BeepCapture;

/// Per-channel screening statistics.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelStats {
    /// AC energy `Σ (x − mean)²` over the whole window.
    pub energy: f64,
    /// Mean sample value (DC level).
    pub dc: f64,
    /// RMS of the mean-removed signal.
    pub ac_rms: f64,
    /// Maximum absolute amplitude.
    pub peak: f64,
    /// Fraction of samples within 0.1 % of the peak (rail dwell).
    pub clip_fraction: f64,
}

/// Why a channel was excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChannelFlaw {
    /// Energy far below the median channel (dead or disconnected).
    LowEnergy,
    /// Energy far above the median channel (interference burst).
    ExcessEnergy,
    /// DC level out of proportion to the AC signal.
    DcBias,
    /// Too many samples dwelling at the amplitude rail (saturation).
    Clipped,
}

/// Screening thresholds.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HealthConfig {
    /// Fewest healthy microphones degraded-mode imaging will accept
    /// before rejecting the capture with
    /// [`EchoImageError::DegradedCapture`]. Values below 2 are treated
    /// as 2 (beamforming needs a baseline).
    pub min_mics: usize,
    /// A channel is [`ChannelFlaw::LowEnergy`] when its AC energy falls
    /// below this fraction of the median channel's.
    pub relative_energy_floor: f64,
    /// A channel is [`ChannelFlaw::ExcessEnergy`] when its AC energy
    /// exceeds this multiple of the median channel's.
    pub relative_energy_ceiling: f64,
    /// A channel is [`ChannelFlaw::DcBias`] when `|mean|` exceeds this
    /// multiple of its AC RMS.
    pub max_dc_ratio: f64,
    /// A channel is [`ChannelFlaw::Clipped`] when more than this
    /// fraction of samples dwell at the rail.
    pub max_clip_fraction: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            min_mics: 3,
            relative_energy_floor: 0.02,
            relative_energy_ceiling: 25.0,
            max_dc_ratio: 0.5,
            max_clip_fraction: 0.01,
        }
    }
}

/// The verdict of screening one capture (or, unioned, a whole train).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelHealth {
    stats: Vec<ChannelStats>,
    flaws: Vec<Vec<ChannelFlaw>>,
}

impl ChannelHealth {
    /// Number of screened channels.
    pub fn num_channels(&self) -> usize {
        self.flaws.len()
    }

    /// `true` when channel `m` carries no flaw.
    pub fn is_healthy(&self, m: usize) -> bool {
        self.flaws[m].is_empty()
    }

    /// The flaws of channel `m` (empty when healthy).
    pub fn flaws(&self, m: usize) -> &[ChannelFlaw] {
        &self.flaws[m]
    }

    /// The screening statistics of channel `m` (for a train, the first
    /// capture's — representative, since the whole train shares one
    /// hardware state).
    pub fn stats(&self, m: usize) -> &ChannelStats {
        &self.stats[m]
    }

    /// Indices of the healthy channels, ascending — the mic-subset mask
    /// degraded-mode imaging consumes.
    pub fn healthy_indices(&self) -> Vec<usize> {
        (0..self.flaws.len())
            .filter(|&m| self.flaws[m].is_empty())
            .collect()
    }

    /// Number of healthy channels.
    pub fn num_healthy(&self) -> usize {
        self.flaws.iter().filter(|f| f.is_empty()).count()
    }

    /// `true` when every channel passed — the fast path that keeps the
    /// degraded pipeline bit-identical to the ordinary one.
    pub fn all_healthy(&self) -> bool {
        self.flaws.iter().all(|f| f.is_empty())
    }

    /// Bitmask of the excised (unhealthy) channels: bit `i` set means
    /// mic `i` was flagged. Channels beyond 63 saturate into bit 63 so
    /// the mask stays a lossless rejection witness for every realistic
    /// array size. This is the mask carried by
    /// [`crate::EchoImageError::DegradedCapture`] and the audit log.
    pub fn excised_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (m, flaws) in self.flaws.iter().enumerate() {
            if !flaws.is_empty() {
                mask |= 1u64 << m.min(63);
            }
        }
        mask
    }

    /// Unions another screen's flaws into this one (same channel count
    /// required) — a channel faulted in *any* beep of a train is
    /// excluded for the whole train, since the fault is hardware state,
    /// not noise.
    fn merge(&mut self, other: &ChannelHealth) {
        for (mine, theirs) in self.flaws.iter_mut().zip(&other.flaws) {
            for flaw in theirs {
                if !mine.contains(flaw) {
                    mine.push(*flaw);
                }
            }
        }
    }
}

/// Screening statistics of one channel.
fn channel_stats(samples: &[f64]) -> ChannelStats {
    let n = samples.len();
    if n == 0 {
        return ChannelStats {
            energy: 0.0,
            dc: 0.0,
            ac_rms: 0.0,
            peak: 0.0,
            clip_fraction: 0.0,
        };
    }
    let dc = samples.iter().sum::<f64>() / n as f64;
    let energy: f64 = samples.iter().map(|&x| (x - dc) * (x - dc)).sum();
    let ac_rms = (energy / n as f64).sqrt();
    let peak = samples.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    let clip_fraction = if peak > 0.0 {
        samples.iter().filter(|&&x| x.abs() >= 0.999 * peak).count() as f64 / n as f64
    } else {
        0.0
    };
    ChannelStats {
        energy,
        dc,
        ac_rms,
        peak,
        clip_fraction,
    }
}

/// Screens one raw (unfiltered) capture.
pub fn screen_capture(capture: &BeepCapture, config: &HealthConfig) -> ChannelHealth {
    let stats: Vec<ChannelStats> = capture
        .channels()
        .iter()
        .map(|c| channel_stats(c))
        .collect();
    let mut energies: Vec<f64> = stats.iter().map(|s| s.energy).collect();
    energies.sort_by(f64::total_cmp);
    let median = energies[energies.len() / 2];

    let flaws = stats
        .iter()
        .map(|s| {
            let mut f = Vec::new();
            // A zero-energy channel is dead regardless of its siblings
            // (including when every channel is dead and the median is 0).
            if s.energy <= 0.0 || s.energy < config.relative_energy_floor * median {
                f.push(ChannelFlaw::LowEnergy);
            } else if median > 0.0 && s.energy > config.relative_energy_ceiling * median {
                f.push(ChannelFlaw::ExcessEnergy);
            }
            if s.dc.abs() > config.max_dc_ratio * s.ac_rms && s.ac_rms > 0.0 {
                f.push(ChannelFlaw::DcBias);
            }
            if s.clip_fraction > config.max_clip_fraction {
                f.push(ChannelFlaw::Clipped);
            }
            f
        })
        .collect();
    ChannelHealth { stats, flaws }
}

/// Screens a whole beep train: per-beep screens unioned per channel.
///
/// # Errors
///
/// * [`EchoImageError::NoCaptures`] — `captures` is empty.
/// * [`EchoImageError::InconsistentCaptures`] — channel counts differ.
pub fn screen_train(
    captures: &[BeepCapture],
    config: &HealthConfig,
) -> Result<ChannelHealth, EchoImageError> {
    let first = captures.first().ok_or(EchoImageError::NoCaptures)?;
    let m = first.num_channels();
    if captures.iter().any(|c| c.num_channels() != m) {
        return Err(EchoImageError::InconsistentCaptures);
    }
    let mut health = screen_capture(first, config);
    for capture in &captures[1..] {
        health.merge(&screen_capture(capture, config));
    }
    echo_obs::counter!("health.trains_screened").inc();
    echo_obs::counter!("health.channels_excised").add((m - health.num_healthy()) as u64);
    Ok(health)
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_sim::fault::{ChannelFault, FaultPlan};

    /// A plausible 6-channel capture: windowed tone bursts over a small
    /// noise floor, distinct phases per channel.
    fn capture() -> BeepCapture {
        let n = 1024;
        let channels: Vec<Vec<f64>> = (0..6)
            .map(|ch| {
                (0..n)
                    .map(|t| {
                        let tone = (0.33 * t as f64 + ch as f64).sin()
                            * (-((t as f64) - 300.0).abs() / 120.0).exp();
                        let dither = ((t * 7 + ch * 13) % 97) as f64 / 97.0 - 0.5;
                        tone + 0.01 * dither
                    })
                    .collect()
            })
            .collect();
        BeepCapture::new(channels, 48_000.0, 128)
    }

    #[test]
    fn clean_capture_screens_healthy() {
        let health = screen_capture(&capture(), &HealthConfig::default());
        assert!(
            health.all_healthy(),
            "flaws: {:?}",
            (0..6).map(|m| health.flaws(m).to_vec()).collect::<Vec<_>>()
        );
        assert_eq!(health.healthy_indices(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(health.num_healthy(), 6);
    }

    #[test]
    fn dead_channel_is_flagged_low_energy() {
        let cap = FaultPlan::new(1)
            .with_fault(2, ChannelFault::Dead)
            .apply(&capture());
        let health = screen_capture(&cap, &HealthConfig::default());
        assert!(!health.is_healthy(2));
        assert!(health.flaws(2).contains(&ChannelFlaw::LowEnergy));
        assert_eq!(health.healthy_indices(), vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn dc_pedestal_is_flagged() {
        let cap = FaultPlan::new(1)
            .with_fault(0, ChannelFault::DcOffset { scale: 2.0 })
            .apply(&capture());
        let health = screen_capture(&cap, &HealthConfig::default());
        assert!(health.flaws(0).contains(&ChannelFlaw::DcBias));
        assert!(health.is_healthy(1));
    }

    #[test]
    fn hard_clipping_is_flagged() {
        let cap = FaultPlan::new(1)
            .with_fault(4, ChannelFault::Clipping { fraction: 0.05 })
            .apply(&capture());
        let health = screen_capture(&cap, &HealthConfig::default());
        assert!(health.flaws(4).contains(&ChannelFlaw::Clipped));
    }

    #[test]
    fn interference_burst_is_flagged_excess_energy() {
        let cap = FaultPlan::new(1)
            .with_fault(5, ChannelFault::BurstInterference { level: 20.0 })
            .apply(&capture());
        let health = screen_capture(&cap, &HealthConfig::default());
        assert!(health.flaws(5).contains(&ChannelFlaw::ExcessEnergy));
    }

    #[test]
    fn all_dead_capture_has_no_healthy_channels() {
        let cap = capture().map_channels(|_| vec![0.0; 1024]);
        let health = screen_capture(&cap, &HealthConfig::default());
        assert_eq!(health.num_healthy(), 0);
    }

    #[test]
    fn train_screen_unions_per_beep_flaws() {
        let clean = capture();
        let damaged = FaultPlan::new(1)
            .with_fault(1, ChannelFault::Dead)
            .apply(&clean);
        let health = screen_train(&[clean.clone(), damaged], &HealthConfig::default()).unwrap();
        assert!(
            !health.is_healthy(1),
            "a fault in any beep excludes the channel"
        );
        assert_eq!(health.num_healthy(), 5);

        assert!(matches!(
            screen_train(&[], &HealthConfig::default()),
            Err(EchoImageError::NoCaptures)
        ));
        let three = clean.select_channels(&[0, 1, 2]);
        assert!(matches!(
            screen_train(&[clean, three], &HealthConfig::default()),
            Err(EchoImageError::InconsistentCaptures)
        ));
    }

    #[test]
    fn zero_sample_capture_is_fully_flagged() {
        let cap = BeepCapture::new(vec![vec![]; 4], 48_000.0, 0);
        let health = screen_capture(&cap, &HealthConfig::default());
        assert_eq!(health.num_healthy(), 0);
        assert_eq!(health.stats(0).energy, 0.0);
    }
}
