//! Anti-replay spatial check on the imaging path (DESIGN.md §14).
//!
//! A genuine user's echo is the superposition of hundreds of
//! speaker→scatterer→microphone paths spread across bearing; the MVDR
//! image of such a train has angular *structure* — intensity
//! concentrates where the body actually is. A loudspeaker replaying a
//! recorded capture is a single point source: every microphone receives
//! the same waveform, the array sees no angular diversity at all, and
//! the beamformed image collapses to a function of range alone — a
//! smooth ring-like intensity spread across the whole plane. (This is
//! the acoustic-map replay signature of Neri & Virtanen, applied to
//! EchoImage's probing beeps.)
//!
//! The statistic is therefore the **normalized spatial spread** of the
//! acoustic image: the intensity-weighted RMS distance of pixels from
//! the intensity centroid, normalized by the spread of a uniform image,
//! averaged over the train's beeps. Live bodies image compactly
//! (≈0.7–0.77 in the reference simulator); point-source replays flatten
//! toward uniformity (≈0.85–0.92). An attempt whose spread exceeds
//! [`SpatialCheckConfig::max_coherence`] is rejected with
//! [`RejectKind::ReplaySignature`] before feature extraction.
//!
//! Waveform-domain pair correlation was deliberately rejected for this
//! job: the dominant chest echo of a live body is so compact that its
//! inter-channel coherence is indistinguishable from a loudspeaker's
//! once sub-sample lag alignment is accounted for, and the measurement
//! mostly tracks the echo's signal-to-noise ratio instead of its
//! geometry. The image-domain statistic uses the array's full angular
//! aperture and is nearly free — the images are already built.
//!
//! The screen is **off by default** ([`SpatialCheckConfig::enabled`])
//! — it is an attack countermeasure, not part of the paper's §V
//! pipeline — and is enabled by the attack evaluation (`fig_attack`),
//! the spoof audit suite, and deployments that want it.
//!
//! [`RejectKind::ReplaySignature`]: echo_obs::RejectKind::ReplaySignature

use crate::config::SpatialCheckConfig;
use echo_ml::GrayImage;

/// Mean normalized spatial spread over a train's acoustic images, or
/// `None` when the check is disabled or `images` is empty. Compare
/// against [`SpatialCheckConfig::max_coherence`].
pub fn train_spread(cfg: &SpatialCheckConfig, images: &[GrayImage]) -> Option<f64> {
    if !cfg.enabled || images.is_empty() {
        return None;
    }
    Some(images.iter().map(image_spread).sum::<f64>() / images.len() as f64)
}

/// Normalized spatial spread of one acoustic image: the
/// intensity-weighted RMS pixel distance from the intensity centroid,
/// divided by the RMS distance of a uniform image about its centre
/// (`√((w²+h²)/12)`). Near 1 for a structureless (point-source) image;
/// measurably lower when intensity concentrates on a body. An all-zero
/// image reads as fully structureless (1.0).
pub fn image_spread(image: &GrayImage) -> f64 {
    let (w, h) = (image.width(), image.height());
    let mut total = 0.0;
    let mut cx = 0.0;
    let mut cy = 0.0;
    for y in 0..h {
        for x in 0..w {
            let v = image.get(x, y).max(0.0);
            total += v;
            cx += v * x as f64;
            cy += v * y as f64;
        }
    }
    if total <= 0.0 {
        return 1.0;
    }
    cx /= total;
    cy /= total;
    let mut m2 = 0.0;
    for y in 0..h {
        for x in 0..w {
            let v = image.get(x, y).max(0.0);
            m2 += v * ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2));
        }
    }
    let uniform = ((w * w + h * h) as f64 / 12.0).sqrt();
    (m2 / total).sqrt() / uniform
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::EchoImagePipeline;
    use echo_sim::body::{BodyModel, Placement};
    use echo_sim::scene::{Scene, SceneConfig};
    use echo_sim::spoof::SpoofPlan;

    fn enabled() -> SpatialCheckConfig {
        SpatialCheckConfig {
            enabled: true,
            ..SpatialCheckConfig::default()
        }
    }

    #[test]
    fn disabled_check_measures_nothing() {
        let img = GrayImage::from_fn(8, 8, |x, y| (x + y) as f64);
        assert_eq!(train_spread(&SpatialCheckConfig::default(), &[img]), None);
        assert_eq!(train_spread(&enabled(), &[]), None);
    }

    #[test]
    fn point_image_is_compact_and_uniform_image_is_flat() {
        let mut point = GrayImage::zeros(32, 32);
        point.set(16, 16, 1.0);
        assert!(image_spread(&point) < 1e-9);
        let uniform = GrayImage::from_fn(32, 32, |_, _| 1.0);
        let u = image_spread(&uniform);
        assert!((u - 1.0).abs() < 0.05, "uniform spread {u} should be ≈1");
        assert!(image_spread(&GrayImage::zeros(8, 8)) == 1.0);
    }

    #[test]
    fn replay_spread_exceeds_genuine_with_margin() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(3));
        let p = Placement::standing_front(0.7);
        let pipe = EchoImagePipeline::new(PipelineConfig::default().with_threads(1));
        let cfg = enabled();
        let mut genuine_max = 0.0f64;
        let mut replay_min = 1.0f64;
        for seed in [11u64, 22, 33] {
            let victim = BodyModel::from_seed(seed);
            let caps = scene.capture_train(&victim, &p, 0, 3, 0);
            let (gi, _) = pipe.images_from_train(&caps).unwrap();
            let g = train_spread(&cfg, &gi).unwrap();
            let plan = SpoofPlan::replay_of(&caps, 0.7, seed);
            let attack = plan.capture_train(&scene, &p, 5, 3, 0);
            let (ri, _) = pipe.images_from_train(&attack).unwrap();
            let r = train_spread(&cfg, &ri).unwrap();
            genuine_max = genuine_max.max(g);
            replay_min = replay_min.min(r);
        }
        assert!(
            replay_min > genuine_max,
            "replay spread {replay_min} must exceed genuine {genuine_max}"
        );
        // The default ceiling must sit inside the gap.
        let t = SpatialCheckConfig::default().max_coherence;
        assert!(
            genuine_max < t && t < replay_min,
            "default ceiling {t} must separate genuine {genuine_max} from replay {replay_min}"
        );
    }
}
