//! Feature extraction from acoustic images (paper §V-D).
//!
//! The paper resizes each acoustic image to the VGGish input, runs the
//! frozen network and taps the 5th pooling layer as the feature vector.
//! This module wraps the reproduction's frozen CNN
//! ([`echo_ml::FeatureExtractor`], see DESIGN.md §1 for the
//! transfer-learning substitution) behind the same interface.

use crate::par::{parallel_map_indexed, worker_count};
use echo_ml::{FeatureExtractor, GrayImage};

/// Extracts fixed-length embeddings from acoustic images.
///
/// # Example
///
/// ```
/// use echoimage_core::features::ImageFeatures;
/// use echo_ml::GrayImage;
///
/// let fx = ImageFeatures::new();
/// let img = GrayImage::from_fn(32, 32, |x, y| (x * y) as f64);
/// let f = fx.extract(&img);
/// assert_eq!(f.len(), fx.feature_len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImageFeatures {
    extractor: FeatureExtractor,
}

impl ImageFeatures {
    /// The default frozen extractor (deterministic weights).
    pub fn new() -> Self {
        ImageFeatures {
            extractor: FeatureExtractor::paper_default(),
        }
    }

    /// Uses a custom extractor (e.g. a different seed or architecture
    /// for ablations).
    pub fn with_extractor(extractor: FeatureExtractor) -> Self {
        ImageFeatures { extractor }
    }

    /// Length of the extracted feature vector.
    pub fn feature_len(&self) -> usize {
        self.extractor.feature_len()
    }

    /// Extracts the embedding for one acoustic image.
    pub fn extract(&self, image: &GrayImage) -> Vec<f64> {
        self.extractor.extract(image)
    }

    /// Extracts embeddings for a batch of images on one thread, reusing
    /// one scratch arena across the whole batch (no per-image
    /// allocation). Output `i` equals `extract(&images[i])` bit for bit.
    pub fn extract_batch(&self, images: &[GrayImage]) -> Vec<Vec<f64>> {
        self.extractor.extract_batch(images)
    }

    /// [`ImageFeatures::extract_batch`] fanned over the deterministic
    /// work pool (`threads` follows the workspace convention: `0` =
    /// available parallelism, `1` = serial).
    ///
    /// Images are split into one contiguous chunk per worker and each
    /// worker runs the serial batch path with its own scratch, so the
    /// result is **bit-identical for every thread count and batch
    /// size** — the property the determinism suite pins.
    pub fn extract_batch_threaded(&self, images: &[GrayImage], threads: usize) -> Vec<Vec<f64>> {
        let workers = worker_count(threads, images.len());
        if workers <= 1 {
            return self.extract_batch(images);
        }
        let chunk = images.len().div_ceil(workers);
        let chunks: Vec<&[GrayImage]> = images.chunks(chunk).collect();
        parallel_map_indexed(&chunks, workers, |_, c| self.extractor.extract_batch(c))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Ablation baseline: the raw image, resized to the CNN input and
    /// flattened, without any convolutional mapping.
    pub fn raw_pixels(&self, image: &GrayImage) -> Vec<f64> {
        let size = self.extractor.input_size();
        let mut r = image.resize(size, size);
        r.normalize();
        r.pixels().to_vec()
    }
}

impl Default for ImageFeatures {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_is_deterministic() {
        let fx = ImageFeatures::new();
        let img = GrayImage::from_fn(40, 40, |x, y| ((x + 2 * y) % 5) as f64);
        assert_eq!(fx.extract(&img), fx.extract(&img));
    }

    #[test]
    fn batch_matches_single() {
        let fx = ImageFeatures::new();
        let imgs = vec![
            GrayImage::from_fn(32, 32, |x, _| x as f64),
            GrayImage::from_fn(32, 32, |_, y| y as f64),
        ];
        let batch = fx.extract_batch(&imgs);
        assert_eq!(batch[0], fx.extract(&imgs[0]));
        assert_eq!(batch[1], fx.extract(&imgs[1]));
    }

    #[test]
    fn threaded_batch_is_bit_identical_to_serial() {
        let fx = ImageFeatures::new();
        let imgs: Vec<GrayImage> = (0..7)
            .map(|k| GrayImage::from_fn(36, 36, move |x, y| ((x + k * y) % 9) as f64))
            .collect();
        let serial = fx.extract_batch_threaded(&imgs, 1);
        assert_eq!(serial.len(), imgs.len());
        for threads in [2, 3, 4, 0] {
            assert_eq!(fx.extract_batch_threaded(&imgs, threads), serial);
        }
        assert!(fx.extract_batch_threaded(&[], 4).is_empty());
    }

    #[test]
    fn raw_pixel_baseline_has_input_size_squared_length() {
        let fx = ImageFeatures::new();
        let img = GrayImage::from_fn(64, 64, |x, y| (x * y) as f64);
        let raw = fx.raw_pixels(&img);
        let s = 32; // paper_default input size
        assert_eq!(raw.len(), s * s);
        assert!(raw.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn different_images_give_different_features() {
        let fx = ImageFeatures::new();
        let a = fx.extract(&GrayImage::from_fn(32, 32, |x, _| x as f64));
        let b = fx.extract(&GrayImage::from_fn(32, 32, |_, y| y as f64));
        assert_ne!(a, b);
    }
}
