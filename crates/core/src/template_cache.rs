//! Process-wide cache of matched-filter plans for transmitted chirps.
//!
//! Every distance estimate matched-filters each beep against the *same*
//! analytic chirp template (paper Eq. 9). Synthesising that template and
//! re-transforming it per call cost one chirp synthesis, one Hilbert
//! transform, and one forward FFT per capture. This cache — the same
//! MRU-list pattern as [`crate::steering_cache`] — keys an
//! [`echo_dsp::correlate::MatchedFilterPlan`] on the beep parameters, so
//! a process re-pays the template only when the beep design changes
//! (ablation sweeps), not per authentication.
//!
//! Results are unchanged: the plan caches the exact spectrum the
//! per-call path computed, and correlation outputs are bit-identical to
//! [`echo_dsp::correlate::matched_filter_complex`].

use crate::config::BeepConfig;
use echo_dsp::correlate::MatchedFilterPlan;
use echo_dsp::hilbert::analytic_signal;
use std::sync::{Arc, Mutex, OnceLock};

/// Beep parameters that determine the chirp template, as exact bits.
type TemplateKey = [u64; 4];

fn template_key(beep: &BeepConfig) -> TemplateKey {
    // `interval` spaces beeps in time but never reaches the template.
    [
        beep.f_start.to_bits(),
        beep.f_end.to_bits(),
        beep.duration.to_bits(),
        beep.sample_rate.to_bits(),
    ]
}

/// One cache entry: the slot is published under the lock before the
/// plan exists, so racing workers coalesce on one synthesis and the
/// `template_cache.hit` / `template_cache.miss` counters are
/// deterministic for a fixed workload at any worker count.
type Slot = Arc<OnceLock<Arc<MatchedFilterPlan>>>;

/// Most-recently-used-first plan list.
static CACHE: Mutex<Vec<(TemplateKey, Slot)>> = Mutex::new(Vec::new());

/// Distinct beep designs kept alive; runs use one, ablations a handful.
const CAPACITY: usize = 4;

/// Returns the matched-filter plan for `beep`'s *analytic* chirp
/// template (the one the distance estimator correlates beamformed
/// analytic signals against), computing and caching it on first use.
pub fn chirp_template_plan(beep: &BeepConfig) -> Arc<MatchedFilterPlan> {
    chirp_template_plan_classified(beep).0
}

/// [`chirp_template_plan`] that also reports whether the lookup hit the
/// cache, for trace-span attribution. Template lookups happen on the
/// serial distance-estimation path, so the returned flag is
/// deterministic for a fixed workload and cache state (unlike the
/// steering-field cache, whose parallel lookups coalesce racers).
pub fn chirp_template_plan_classified(beep: &BeepConfig) -> (Arc<MatchedFilterPlan>, bool) {
    let key = template_key(beep);
    let (slot, cache_hit) = {
        let mut cache = CACHE.lock().expect("chirp template cache poisoned");
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            echo_obs::counter!("template_cache.hit").inc();
            let hit = cache.remove(pos);
            let slot = Arc::clone(&hit.1);
            cache.insert(0, hit);
            (slot, true)
        } else {
            echo_obs::counter!("template_cache.miss").inc();
            let slot: Slot = Arc::new(OnceLock::new());
            cache.insert(0, (key, Arc::clone(&slot)));
            cache.truncate(CAPACITY);
            (slot, false)
        }
    };
    // Synthesise outside the lock; same-key racers block on the slot
    // and share the one plan instead of duplicating the synthesis.
    let plan = Arc::clone(slot.get_or_init(|| {
        let chirp = beep.chirp().samples();
        Arc::new(MatchedFilterPlan::new_complex(&analytic_signal(&chirp)))
    }));
    (plan, cache_hit)
}

/// Number of templates currently cached (for tests and benchmarks).
pub fn template_cache_len() -> usize {
    CACHE.lock().expect("chirp template cache poisoned").len()
}

/// Empties the template cache (for tests needing a cold start).
pub fn clear_template_cache() {
    CACHE.lock().expect("chirp template cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_beep_shares_a_plan() {
        let a = chirp_template_plan(&BeepConfig::paper());
        let b = chirp_template_plan(&BeepConfig::paper());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_beeps_get_different_plans() {
        let a = chirp_template_plan(&BeepConfig::paper());
        let mut other = BeepConfig::paper();
        other.duration = 0.004;
        let b = chirp_template_plan(&other);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.template_len(), b.template_len());
    }

    #[test]
    fn interval_does_not_affect_the_template() {
        let a = chirp_template_plan(&BeepConfig::paper());
        let mut other = BeepConfig::paper();
        other.interval = 1.0;
        let b = chirp_template_plan(&other);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_stays_bounded() {
        clear_template_cache();
        for i in 0..10 {
            let mut beep = BeepConfig::paper();
            beep.f_end = 3_000.0 + 10.0 * i as f64;
            let _ = chirp_template_plan(&beep);
        }
        assert!(template_cache_len() <= CAPACITY);
    }

    #[test]
    fn plan_matches_per_call_template() {
        let beep = BeepConfig::paper();
        let plan = chirp_template_plan(&beep);
        let chirp = beep.chirp().samples();
        assert_eq!(plan.template_len(), analytic_signal(&chirp).len());
    }
}
