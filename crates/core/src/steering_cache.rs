//! A process-wide cache of imaging-plane steering fields.
//!
//! Scanning the imaging plane steers the array at every grid cell, and
//! the steering vectors depend only on the geometry of the sweep — the
//! array, the grid, the plane distance and the narrowband frequency —
//! not on the capture being imaged. Re-imaging the N beeps of one train
//! therefore recomputes the exact same field N times. This module
//! computes the field once per distinct geometry and shares it behind an
//! [`Arc`]; a small LRU (the working set of one run is a handful of
//! plane distances) bounds memory.
//!
//! Cache hits are bit-identical to recomputation by construction: the
//! cached value *is* the output of [`compute_field`] for the same key,
//! and every component of the key enters the key as exact bits
//! (`f64::to_bits`), so no two distinct geometries ever share an entry.
//!
//! Lookups feed the `steering_cache.hit` / `steering_cache.miss`
//! counters. The hit/miss decision is made while holding the cache
//! lock, and a miss publishes its in-flight slot before releasing it,
//! so the counts are deterministic for a fixed workload at any worker
//! count (as long as the working set fits [`CACHE_CAPACITY`], which it
//! does by design).

use crate::config::ImagingConfig;
use echo_array::{Direction, MicArray, Vec3};
use echo_dsp::Complex;
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

/// Steering data for one grid cell.
#[derive(Debug, Clone)]
pub struct SteeringCell {
    /// Narrowband steering vector toward the cell centre.
    pub steering: Vec<Complex>,
    /// Cell-to-origin distance `D_k` (drives the echo time gate).
    pub distance: f64,
}

/// The full per-cell steering field of one imaging sweep.
#[derive(Debug, Clone)]
pub struct SteeringField {
    grid_n: usize,
    cells: Vec<SteeringCell>,
}

impl SteeringField {
    /// The steering data of cell `(col, row)` (row-major, row 0 on top).
    pub fn cell(&self, col: usize, row: usize) -> &SteeringCell {
        &self.cells[row * self.grid_n + col]
    }

    /// Grid cells per side.
    pub fn grid_n(&self) -> usize {
        self.grid_n
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FieldKey {
    array: u64,
    grid_n: usize,
    spacing_bits: u64,
    distance_bits: u64,
    f0_bits: u64,
}

/// One cache entry: the slot is published under the lock before the
/// field exists, so racing workers share a single computation
/// (`OnceLock::get_or_init` blocks the laggards) and the hit/miss
/// split is decided at key-lookup time — deterministic for a fixed
/// workload regardless of thread count or interleaving.
type Slot = Arc<OnceLock<Arc<SteeringField>>>;

/// Most-recently-used-first list; linear scan is fine at this size.
static CACHE: Mutex<Vec<(FieldKey, Slot)>> = Mutex::new(Vec::new());

/// Distinct geometries kept alive. A run touches one array, one grid
/// and a few plane distances (estimate ± enrolment offsets), so eight
/// entries hold the whole working set.
const CACHE_CAPACITY: usize = 8;

/// Computes the steering field directly, bypassing the cache. Public so
/// benchmarks can price the miss path and tests can verify hits against
/// fresh recomputation.
pub fn compute_field(
    array: &MicArray,
    icfg: &ImagingConfig,
    horizontal_distance: f64,
    f0: f64,
) -> SteeringField {
    let n = icfg.grid_n;
    let mut cells = Vec::with_capacity(n * n);
    for row in 0..n {
        for col in 0..n {
            let (x_k, z_k) = icfg.cell_center(col, row);
            let cell = Vec3::new(x_k, horizontal_distance, z_k);
            // Eq. 11–12 via the general direction-to-point formula.
            let dir = Direction::toward_point(cell);
            cells.push(SteeringCell {
                steering: array.steering_vector(dir, f0),
                distance: cell.norm(),
            });
        }
    }
    SteeringField { grid_n: n, cells }
}

/// Returns the steering field for this sweep geometry, computing and
/// caching it on first use.
pub fn steering_field(
    array: &MicArray,
    icfg: &ImagingConfig,
    horizontal_distance: f64,
    f0: f64,
) -> Arc<SteeringField> {
    let key = FieldKey {
        array: array.geometry_fingerprint(),
        grid_n: icfg.grid_n,
        spacing_bits: icfg.grid_spacing.to_bits(),
        distance_bits: horizontal_distance.to_bits(),
        f0_bits: f0.to_bits(),
    };
    let slot = {
        let mut cache = CACHE.lock();
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            echo_obs::counter!("steering_cache.hit").inc();
            let hit = cache.remove(pos);
            let slot = Arc::clone(&hit.1);
            cache.insert(0, hit);
            slot
        } else {
            echo_obs::counter!("steering_cache.miss").inc();
            let slot: Slot = Arc::new(OnceLock::new());
            cache.insert(0, (key, Arc::clone(&slot)));
            cache.truncate(CACHE_CAPACITY);
            slot
        }
    };
    // Compute outside the lock: a field is thousands of steering
    // vectors, and concurrent beeps of *different* geometries should
    // not serialize on it. Workers racing for the same key coalesce on
    // the slot's `get_or_init` — exactly one computes, the rest block
    // for the shared result, and the miss above was counted once.
    Arc::clone(slot.get_or_init(|| Arc::new(compute_field(array, icfg, horizontal_distance, f0))))
}

/// [`steering_field`] for a microphone subset of `array`: the array is
/// narrowed to the `healthy` elements (ascending original indices, at
/// least two) before the lookup. The subset geometry carries its own
/// fingerprint, so degraded sweeps get their own cache entries — and a
/// full mask resolves to the very same entry as the unmasked call,
/// because the fingerprints coincide.
///
/// # Panics
///
/// Panics if the mask is malformed (see [`MicArray::subset`]); callers
/// should validate the mask against the channel-health screen first.
pub fn steering_field_masked(
    array: &MicArray,
    healthy: &[usize],
    icfg: &ImagingConfig,
    horizontal_distance: f64,
    f0: f64,
) -> Arc<SteeringField> {
    if healthy.len() == array.len() {
        return steering_field(array, icfg, horizontal_distance, f0);
    }
    steering_field(&array.subset(healthy), icfg, horizontal_distance, f0)
}

/// Number of geometries currently cached (for tests and benchmarks).
pub fn cache_len() -> usize {
    CACHE.lock().len()
}

/// Empties the cache (for tests and benchmarks that need a cold start).
pub fn clear_cache() {
    CACHE.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icfg(n: usize) -> ImagingConfig {
        ImagingConfig {
            grid_n: n,
            ..ImagingConfig::default()
        }
    }

    #[test]
    fn warm_lookup_returns_the_cached_field() {
        let array = MicArray::respeaker_6();
        let cfg = icfg(8);
        let a = steering_field(&array, &cfg, 0.71, 2_500.0);
        let b = steering_field(&array, &cfg, 0.71, 2_500.0);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn cached_field_is_bit_identical_to_recomputation() {
        let array = MicArray::respeaker_6();
        let cfg = icfg(6);
        let cached = steering_field(&array, &cfg, 0.66, 2_500.0);
        let fresh = compute_field(&array, &cfg, 0.66, 2_500.0);
        for row in 0..cfg.grid_n {
            for col in 0..cfg.grid_n {
                let (c, f) = (cached.cell(col, row), fresh.cell(col, row));
                assert_eq!(c.distance.to_bits(), f.distance.to_bits());
                for (x, y) in c.steering.iter().zip(f.steering.iter()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn distinct_geometries_get_distinct_entries() {
        let array = MicArray::respeaker_6();
        let cfg = icfg(4);
        let a = steering_field(&array, &cfg, 0.70, 2_500.0);
        let b = steering_field(&array, &cfg, 0.75, 2_500.0);
        assert!(!Arc::ptr_eq(&a, &b));
        let c = steering_field(&array, &cfg, 0.70, 2_600.0);
        assert!(!Arc::ptr_eq(&a, &c));
        let linear = MicArray::linear(6, 0.04);
        let d = steering_field(&linear, &cfg, 0.70, 2_500.0);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn masked_lookup_shares_and_separates_entries_correctly() {
        let array = MicArray::respeaker_6();
        let cfg = icfg(4);
        // Full mask: same entry as the unmasked lookup.
        let full = steering_field(&array, &cfg, 0.68, 2_500.0);
        let masked_full = steering_field_masked(&array, &[0, 1, 2, 3, 4, 5], &cfg, 0.68, 2_500.0);
        assert!(Arc::ptr_eq(&full, &masked_full));
        // Proper subset: its own entry, bit-identical to a fresh compute
        // on the subset geometry.
        let sub = steering_field_masked(&array, &[0, 2, 3, 5], &cfg, 0.68, 2_500.0);
        assert!(!Arc::ptr_eq(&full, &sub));
        let fresh = compute_field(&array.subset(&[0, 2, 3, 5]), &cfg, 0.68, 2_500.0);
        for row in 0..cfg.grid_n {
            for col in 0..cfg.grid_n {
                let (c, f) = (sub.cell(col, row), fresh.cell(col, row));
                assert_eq!(c.distance.to_bits(), f.distance.to_bits());
                assert_eq!(c.steering.len(), 4);
                for (x, y) in c.steering.iter().zip(f.steering.iter()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn cache_is_bounded() {
        clear_cache();
        let array = MicArray::respeaker_6();
        let cfg = icfg(2);
        for i in 0..(2 * CACHE_CAPACITY) {
            let _ = steering_field(&array, &cfg, 0.5 + i as f64 * 0.01, 2_500.0);
        }
        assert!(cache_len() <= CACHE_CAPACITY);
        // The most recent geometry survived the evictions.
        let last = 0.5 + (2 * CACHE_CAPACITY - 1) as f64 * 0.01;
        let again = steering_field(&array, &cfg, last, 2_500.0);
        let repeat = steering_field(&array, &cfg, last, 2_500.0);
        assert!(Arc::ptr_eq(&again, &repeat));
    }
}
