//! Error type for the EchoImage pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced by the EchoImage pipeline stages.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EchoImageError {
    /// No beep captures were provided.
    NoCaptures,
    /// The direct speaker→microphone chirp could not be located in the
    /// correlation envelope.
    DirectPathNotFound,
    /// No echo peak was found inside the echo period.
    EchoNotFound,
    /// A beamforming operation failed (singular covariance etc.).
    Beamforming(echo_beamform::BeamformError),
    /// Captures disagree in shape (channel count, length or sample rate).
    InconsistentCaptures,
    /// A parameter was out of its valid range.
    InvalidParameter(&'static str),
    /// The template store failed (shard I/O, corruption, or a
    /// non-representable template).
    Store(crate::store::StoreError),
    /// Health screening left fewer microphones than degraded-mode
    /// imaging needs — the capture must be rejected (and retried).
    DegradedCapture {
        /// Microphones that survived screening.
        healthy: usize,
        /// Minimum the pipeline requires.
        required: usize,
        /// Bitmask of excised channels (bit `i` = mic `i` flagged by
        /// the health screen; channels ≥ 64 saturate into bit 63), so
        /// the audit log can attribute the rejection to specific mics.
        mask: u64,
    },
}

impl fmt::Display for EchoImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EchoImageError::NoCaptures => write!(f, "no beep captures were provided"),
            EchoImageError::DirectPathNotFound => {
                write!(
                    f,
                    "direct speaker-to-microphone chirp not found in the envelope"
                )
            }
            EchoImageError::EchoNotFound => {
                write!(f, "no body echo detected in the echo period")
            }
            EchoImageError::Beamforming(e) => write!(f, "beamforming failed: {e}"),
            EchoImageError::Store(e) => write!(f, "template store failed: {e}"),
            EchoImageError::InconsistentCaptures => {
                write!(
                    f,
                    "beep captures disagree in channel count, length or sample rate"
                )
            }
            EchoImageError::InvalidParameter(what) => {
                write!(f, "invalid parameter: {what}")
            }
            EchoImageError::DegradedCapture {
                healthy,
                required,
                mask,
            } => {
                write!(
                    f,
                    "capture too degraded: {healthy} healthy microphones, \
                     {required} required (excised mask {mask:#b})"
                )
            }
        }
    }
}

impl Error for EchoImageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EchoImageError::Beamforming(e) => Some(e),
            EchoImageError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<echo_beamform::BeamformError> for EchoImageError {
    fn from(e: echo_beamform::BeamformError) -> Self {
        EchoImageError::Beamforming(e)
    }
}

impl From<crate::store::StoreError> for EchoImageError {
    fn from(e: crate::store::StoreError) -> Self {
        EchoImageError::Store(e)
    }
}
