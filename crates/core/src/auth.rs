//! The two-stage authentication model (paper §V-E, Fig. 10).
//!
//! Single-user: one SVDD-style one-class SVM trained on the legitimate
//! user's features decides accept/reject directly.
//!
//! Multi-user: a spoofer gate trained on the registered users' data
//! first rejects outsiders; samples that pass are then assigned to a
//! user by an n-class SVM.
//!
//! The gate comes in two flavours ([`GateMode`]): the paper's pooled
//! SVDD over all users' data, and the default per-user variant — one
//! SVDD per enrolled user with a per-user kernel width, accepting when
//! *any* user's domain accepts. The union of per-user domains describes
//! the same region the pooled SVDD approximates, but calibrates its
//! radius to each user's own variability, which matters when users
//! differ in how repeatable their echoes are.

use crate::error::EchoImageError;
use crate::pipeline::EchoImagePipeline;
use echo_ml::{Kernel, OneClassSvm, StandardScaler, SvmMulticlass};
use echo_obs::{AuthAudit, AuthVerdict, RejectKind, TraceCtx};
use echo_sim::BeepCapture;
use std::time::Instant;

/// How the spoofer gate is trained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateMode {
    /// One SVDD per enrolled user; accept if any accepts (default).
    #[default]
    PerUser,
    /// A single SVDD over all users' enrolment data (the paper's
    /// description, kept for ablation).
    Pooled,
}

/// Classifier hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AuthConfig {
    /// One-class SVM ν (upper bound on the enrolment outlier fraction).
    pub nu: f64,
    /// Multi-class SVM regularisation parameter C.
    pub c: f64,
    /// RBF γ; `None` derives it from the intra-user distance scale.
    pub gamma: Option<f64>,
    /// Gate construction.
    pub gate: GateMode,
}

impl Default for AuthConfig {
    fn default() -> Self {
        AuthConfig {
            nu: 0.05,
            c: 10.0,
            gamma: None,
            gate: GateMode::PerUser,
        }
    }
}

/// The outcome of one authentication attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AuthDecision {
    /// The sample passed the spoofer gate and was attributed to a
    /// registered user.
    Accepted {
        /// The predicted registered user.
        user_id: usize,
    },
    /// The sample was rejected as a spoofer.
    Rejected,
}

impl AuthDecision {
    /// `true` when the decision accepted some user.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AuthDecision::Accepted { .. })
    }

    /// The accepted user id, if any.
    pub fn user_id(&self) -> Option<usize> {
        match self {
            AuthDecision::Accepted { user_id } => Some(*user_id),
            AuthDecision::Rejected => None,
        }
    }
}

/// Context an authentication attempt carries into the audit log:
/// who the caller claims to be (experiment harnesses know ground
/// truth; a real device may not) and which retry this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuthAttempt {
    /// The claimed subject, recorded verbatim in the audit.
    pub claimed_user: Option<u64>,
    /// Retry index of this attempt (0 = first try).
    pub retry_index: u64,
}

/// A trained EchoImage authenticator.
///
/// # Example
///
/// ```
/// use echoimage_core::auth::{AuthConfig, Authenticator};
///
/// // Two registered users with separable (toy) features.
/// let u1: Vec<Vec<f64>> = (0..30).map(|i| vec![0.0 + (i % 5) as f64 * 0.02, 0.0]).collect();
/// let u2: Vec<Vec<f64>> = (0..30).map(|i| vec![1.0 + (i % 5) as f64 * 0.02, 1.0]).collect();
/// let auth = Authenticator::enroll(&[(1, u1), (2, u2)], &AuthConfig::default()).unwrap();
///
/// assert_eq!(auth.authenticate(&[0.02, 0.0]).user_id(), Some(1));
/// assert_eq!(auth.authenticate(&[1.02, 1.0]).user_id(), Some(2));
/// // A far-away spoofer is gated out.
/// assert!(!auth.authenticate(&[10.0, -7.0]).is_accepted());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Authenticator {
    scaler: StandardScaler,
    /// Spoofer gates as `(svm, threshold, owner)`. A gate's threshold
    /// is 0 for single-mode users; for multi-mode enrolments it is
    /// self-calibrated to the upper-quartile score the user's *sibling*
    /// modes achieve under that gate (a probe is accepted by a mode if
    /// it looks at least as much like it as the neighbouring modes do).
    gates: Vec<(OneClassSvm, f64, usize)>,
    classifier: Option<SvmMulticlass>,
    single_user: Option<usize>,
}

impl Authenticator {
    /// Enrols registered users from `(user_id, feature_vectors)` pairs.
    ///
    /// With one user only the SVDD gate is trained (the paper's
    /// single-user scenario); with several users the n-class SVM is
    /// trained as well.
    ///
    /// # Errors
    ///
    /// Returns [`EchoImageError::InvalidParameter`] when no users or no
    /// samples are provided, or ids repeat.
    pub fn enroll(
        users: &[(usize, Vec<Vec<f64>>)],
        config: &AuthConfig,
    ) -> Result<Self, EchoImageError> {
        let grouped: Vec<(usize, Vec<Vec<Vec<f64>>>)> = users
            .iter()
            .map(|(id, xs)| (*id, vec![xs.clone()]))
            .collect();
        Self::enroll_with_groups(&grouped, config)
    }

    /// Enrols users whose enrolment clouds are *multi-modal*: each user
    /// provides one or more groups of feature vectors (e.g. one group
    /// per synthesised distance from the §V-F augmentation). The spoofer
    /// gate wraps every group in its own domain description with a
    /// kernel width matched to that group's spread — a single radius
    /// cannot wrap a multi-modal cloud tightly.
    ///
    /// # Errors
    ///
    /// Returns [`EchoImageError::InvalidParameter`] when no users, empty
    /// users/groups, or duplicate ids are provided.
    pub fn enroll_with_groups(
        users: &[(usize, Vec<Vec<Vec<f64>>>)],
        config: &AuthConfig,
    ) -> Result<Self, EchoImageError> {
        if users.is_empty() {
            return Err(EchoImageError::InvalidParameter("no users to enrol"));
        }
        if users
            .iter()
            .any(|(_, gs)| gs.is_empty() || gs.iter().any(|g| g.is_empty()))
        {
            return Err(EchoImageError::InvalidParameter(
                "every user needs at least one non-empty enrolment group",
            ));
        }
        let mut ids: Vec<usize> = users.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != users.len() {
            return Err(EchoImageError::InvalidParameter("duplicate user ids"));
        }
        // Guard the feature geometry up front: a ragged or zero-dim
        // enrolment would otherwise panic deep inside the scaler/kernel.
        let dim = users[0].1[0][0].len();
        if dim == 0 {
            return Err(EchoImageError::InvalidParameter(
                "feature vectors are zero-dimensional",
            ));
        }
        if users
            .iter()
            .any(|(_, gs)| gs.iter().any(|g| g.iter().any(|x| x.len() != dim)))
        {
            return Err(EchoImageError::InvalidParameter(
                "feature vectors disagree in dimensionality",
            ));
        }

        let mut all: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for (id, gs) in users {
            for g in gs {
                for x in g {
                    all.push(x.clone());
                    labels.push(*id);
                }
            }
        }
        // Centre per feature, scale globally: per-feature scaling would
        // inflate noise-only dimensions to the same variance as the
        // discriminative ones and flatten the kernel's distance contrast.
        let scaler = StandardScaler::fit_global(&all);
        let scaled = scaler.transform_batch(&all);
        // Scaled per-user flat clouds (for pooled mode / SVM kernel) and
        // scaled per-(user, group) clouds (for per-group gates).
        let user_clouds: Vec<Vec<Vec<f64>>> = users
            .iter()
            .map(|(_, gs)| {
                let flat: Vec<Vec<f64>> = gs.iter().flatten().cloned().collect();
                scaler.transform_batch(&flat)
            })
            .collect();
        let group_clouds: Vec<Vec<Vec<f64>>> = users
            .iter()
            .flat_map(|(_, gs)| gs.iter().map(|g| scaler.transform_batch(g)))
            .collect();

        let gates = match config.gate {
            GateMode::PerUser => {
                let mut gates = Vec::new();
                let mut offset = 0usize;
                for (uid, gs) in users {
                    let user_groups = &group_clouds[offset..offset + gs.len()];
                    for (svm, threshold) in train_user_gates(user_groups, scaler.dim(), config) {
                        gates.push((svm, threshold, *uid));
                    }
                    offset += gs.len();
                }
                gates
            }
            GateMode::Pooled => {
                let kernel = match config.gamma {
                    Some(g) => Kernel::Rbf { gamma: g },
                    None => intra_rbf(&group_clouds, scaler.dim()),
                };
                // The pooled gate is user-agnostic; owner is unused.
                vec![(
                    OneClassSvm::train(&scaled, kernel, config.nu),
                    0.0,
                    usize::MAX,
                )]
            }
        };

        let (classifier, single_user) = if users.len() == 1 {
            (None, Some(users[0].0))
        } else {
            let kernel = match config.gamma {
                Some(g) => Kernel::Rbf { gamma: g },
                None => intra_rbf(&user_clouds, scaler.dim()),
            };
            (
                Some(SvmMulticlass::train(&scaled, &labels, kernel, config.c)),
                None,
            )
        };
        Ok(Authenticator {
            scaler,
            gates,
            classifier,
            single_user,
        })
    }

    /// Authenticates one feature vector (Fig. 10's cascade).
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`Authenticator::authenticate_checked`] to get an error instead.
    pub fn authenticate(&self, features: &[f64]) -> AuthDecision {
        self.authenticate_scored(features).0
    }

    /// [`Authenticator::authenticate`] also returning the best gate
    /// margin (`decision_value − threshold`, maximised over gates) —
    /// the score the audit log records. Computes each gate decision
    /// exactly once, so the returned decision is bit-identical to
    /// [`Authenticator::authenticate`]'s.
    fn authenticate_scored(&self, features: &[f64]) -> (AuthDecision, f64) {
        let x = self.scaler.transform(features);
        let mut best_margin = f64::NEG_INFINITY;
        let mut fired: Vec<usize> = Vec::new();
        for (g, threshold, owner) in &self.gates {
            // IEEE subtraction yields 0 iff the operands are equal, so
            // `margin >= 0` decides exactly like `decision >= threshold`.
            let margin = g.decision(&x) - *threshold;
            best_margin = best_margin.max(margin);
            if margin >= 0.0 {
                fired.push(*owner);
            }
        }
        if fired.is_empty() {
            return (AuthDecision::Rejected, best_margin);
        }
        let decision = match (&self.classifier, self.single_user) {
            (Some(svm), _) => {
                let user_id = svm.predict(&x);
                // Consistency check: the n-class SVM's attribution must
                // agree with (one of) the fired domain(s). A sample that
                // looks like user A's domain but classifies as user B is
                // contradictory — reject it as a spoofer. (The pooled
                // gate is user-agnostic and always agrees.)
                if fired.contains(&user_id) || fired.contains(&usize::MAX) {
                    AuthDecision::Accepted { user_id }
                } else {
                    AuthDecision::Rejected
                }
            }
            (None, Some(id)) => AuthDecision::Accepted { user_id: id },
            (None, None) => unreachable!("enroll guarantees one of the two"),
        };
        (decision, best_margin)
    }

    /// The best (maximum) spoofer-gate decision value across gates
    /// (≥ 0 passes), for threshold diagnostics.
    pub fn gate_decision(&self, features: &[f64]) -> f64 {
        let x = self.scaler.transform(features);
        self.gates
            .iter()
            .map(|(g, threshold, _)| g.decision(&x) - threshold)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// [`Authenticator::authenticate`] with the dimensionality check
    /// surfaced as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`EchoImageError::InvalidParameter`] when `features` does not
    /// match the enrolled feature dimensionality.
    pub fn authenticate_checked(&self, features: &[f64]) -> Result<AuthDecision, EchoImageError> {
        if features.len() != self.scaler.dim() {
            return Err(EchoImageError::InvalidParameter(
                "feature vector does not match the enrolled dimensionality",
            ));
        }
        Ok(self.authenticate(features))
    }

    /// Authenticates a whole raw beep train through the degraded-capable
    /// pipeline: the train is health-screened, imaged from the surviving
    /// microphones, each beep's features are authenticated, and the
    /// per-beep decisions are majority-voted (a strict majority of beeps
    /// must accept the *same* user).
    ///
    /// # Errors
    ///
    /// * [`EchoImageError::DegradedCapture`] — too few healthy
    ///   microphones survived screening; retry with a fresh train (see
    ///   [`Authenticator::authenticate_train_with_retry`]).
    /// * Everything [`EchoImagePipeline::features_from_train_degraded`]
    ///   and [`Authenticator::authenticate_checked`] can return.
    pub fn authenticate_train(
        &self,
        pipeline: &EchoImagePipeline,
        captures: &[BeepCapture],
    ) -> Result<AuthDecision, EchoImageError> {
        let root = echo_obs::root_span("auth.train");
        let ctx = root.ctx();
        self.authenticate_train_traced(ctx, pipeline, captures, AuthAttempt::default())
    }

    /// [`Authenticator::authenticate_train`] with the claimed subject
    /// recorded in the audit log — the variant experiment harnesses use,
    /// since they know ground truth.
    ///
    /// # Errors
    ///
    /// See [`Authenticator::authenticate_train`].
    pub fn authenticate_train_claimed(
        &self,
        pipeline: &EchoImagePipeline,
        captures: &[BeepCapture],
        claimed_user: u64,
    ) -> Result<AuthDecision, EchoImageError> {
        let root = echo_obs::root_span("auth.train");
        let ctx = root.ctx();
        self.authenticate_train_traced(
            ctx,
            pipeline,
            captures,
            AuthAttempt {
                claimed_user: Some(claimed_user),
                retry_index: 0,
            },
        )
    }

    /// [`Authenticator::authenticate_train`] under an existing trace
    /// context: records a `stage.auth` span (child `lidx` = the retry
    /// index) and one [`AuthAudit`] for the decision. Latency lands in
    /// the `stage.auth` histogram, and additionally in
    /// `stage.auth_degraded` when the train went through the degraded
    /// route (channels excised *or* the capture rejected as degraded),
    /// so degraded-path latency has the same coverage as the happy path.
    ///
    /// # Errors
    ///
    /// See [`Authenticator::authenticate_train`]. Every error still
    /// records an audit with a non-empty reject reason.
    pub fn authenticate_train_traced(
        &self,
        ctx: TraceCtx,
        pipeline: &EchoImagePipeline,
        captures: &[BeepCapture],
        attempt: AuthAttempt,
    ) -> Result<AuthDecision, EchoImageError> {
        let mut tspan = ctx.child_at("stage.auth", attempt.retry_index);
        let started = echo_obs::is_enabled().then(Instant::now);
        echo_obs::counter!("auth.train_attempts").inc();
        let (outcome, degraded) =
            self.authenticate_train_inner(tspan.ctx(), pipeline, captures, &attempt);
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos() as u64;
            echo_obs::histogram!("stage.auth").observe_ns(ns);
            if degraded {
                echo_obs::histogram!("stage.auth_degraded").observe_ns(ns);
            }
        }
        tspan.attr_bool("accepted", matches!(&outcome, Ok(d) if d.is_accepted()));
        tspan.attr_bool("degraded", degraded);
        outcome
    }

    /// The body of a traced train authentication: pipeline, per-beep
    /// scoring, majority vote, audit record. Returns the outcome plus
    /// whether the degraded route was involved (for the
    /// `stage.auth_degraded` histogram).
    fn authenticate_train_inner(
        &self,
        ctx: TraceCtx,
        pipeline: &EchoImagePipeline,
        captures: &[BeepCapture],
        attempt: &AuthAttempt,
    ) -> (Result<AuthDecision, EchoImageError>, bool) {
        let channels = captures.first().map_or(0, |c| c.num_channels()) as u64;
        let beeps = captures.len() as u64;
        let reject_audit =
            |kind: RejectKind, reason: String, mask: u64, coherence: Option<f64>| AuthAudit {
                trace: ctx.trace_id(),
                tenant: None,
                seq: 0,
                claimed_user: attempt.claimed_user,
                beeps,
                votes: Vec::new(),
                votes_needed: beeps / 2 + 1,
                best_gate_margin: None,
                channels,
                degraded_mask: mask,
                retry_index: attempt.retry_index,
                verdict: AuthVerdict::Rejected,
                reject_kind: kind,
                reject_reason: reason,
                spatial_coherence: coherence,
            };
        // Image first (the split `images → features` is bit-identical
        // to `features_from_train_degraded_traced`), so the anti-replay
        // screen can read the acoustic images themselves.
        let (images, health) = match pipeline.images_from_train_degraded_traced(ctx, captures) {
            Ok((images, _, health)) => (images, health),
            Err(e) => {
                let (mask, was_degraded) = match &e {
                    EchoImageError::DegradedCapture { mask, .. } => (*mask, true),
                    _ => (0, false),
                };
                echo_obs::record_audit(reject_audit(
                    RejectKind::CaptureScreen,
                    format!("capture rejected before classification: {e}"),
                    mask,
                    None,
                ));
                return (Err(e), was_degraded);
            }
        };
        let degraded = !health.all_healthy();
        let mask = health.excised_mask();
        // Anti-replay screen on the imaging path, before feature
        // extraction: a point-source re-emission collapses the array's
        // angular structure and flattens the image — a security event,
        // not a degraded capture.
        let spatial_cfg = &pipeline.config().spatial;
        let coherence = if spatial_cfg.enabled {
            let t0 = echo_obs::is_enabled().then(Instant::now);
            let c = crate::spatial::train_spread(spatial_cfg, &images);
            if let Some(t0) = t0 {
                echo_obs::histogram!("stage.spatial").observe_ns(t0.elapsed().as_nanos() as u64);
            }
            c
        } else {
            None
        };
        if let Some(c) = coherence {
            if c > spatial_cfg.max_coherence {
                echo_obs::counter!("auth.replay_rejected").inc();
                echo_obs::record_audit(reject_audit(
                    RejectKind::ReplaySignature,
                    format!(
                        "replay signature: image spread {c:.4} above live ceiling {:.4} \
                         (point-source playback flattens the acoustic image)",
                        spatial_cfg.max_coherence
                    ),
                    mask,
                    Some(c),
                ));
                return (Ok(AuthDecision::Rejected), degraded);
            }
        }
        let features = pipeline.features_batch_traced(ctx, &images);
        (
            self.vote_and_audit(ctx, &features, attempt, channels, beeps, mask, coherence),
            degraded,
        )
    }

    /// Authenticates a train whose per-beep **features are already
    /// extracted** — the serving layer's entry point. The daemon
    /// coalesces many concurrent requests into one
    /// `extract_batch_threaded` call and then decides each request here,
    /// so the decision path (per-beep scoring, strict-majority vote,
    /// audit record) is shared with [`authenticate_train_traced`] and
    /// bit-identical to it for the same features.
    ///
    /// The audit records `channels = 0` and `degraded_mask = 0`: health
    /// screening happened (if at all) wherever the features were
    /// extracted, which this entry point cannot see.
    ///
    /// # Errors
    ///
    /// * [`EchoImageError::NoCaptures`] when `features` is empty.
    /// * [`EchoImageError::InvalidParameter`] when any feature vector
    ///   disagrees with the enrolled dimensionality.
    ///
    /// Every error still records an audit with a non-empty reject
    /// reason.
    ///
    /// [`authenticate_train_traced`]: Authenticator::authenticate_train_traced
    pub fn authenticate_features_traced(
        &self,
        ctx: TraceCtx,
        features: &[Vec<f64>],
        attempt: AuthAttempt,
    ) -> Result<AuthDecision, EchoImageError> {
        let mut tspan = ctx.child_at("stage.auth", attempt.retry_index);
        let started = echo_obs::is_enabled().then(Instant::now);
        echo_obs::counter!("auth.train_attempts").inc();
        let beeps = features.len() as u64;
        let outcome = if features.is_empty() {
            let e = EchoImageError::NoCaptures;
            echo_obs::record_audit(AuthAudit {
                trace: ctx.trace_id(),
                tenant: None,
                seq: 0,
                claimed_user: attempt.claimed_user,
                beeps,
                votes: Vec::new(),
                votes_needed: 1,
                best_gate_margin: None,
                channels: 0,
                degraded_mask: 0,
                retry_index: attempt.retry_index,
                verdict: AuthVerdict::Rejected,
                reject_kind: RejectKind::CaptureScreen,
                reject_reason: format!("capture rejected before classification: {e}"),
                spatial_coherence: None,
            });
            Err(e)
        } else {
            self.vote_and_audit(tspan.ctx(), features, &attempt, 0, beeps, 0, None)
        };
        if let Some(t0) = started {
            echo_obs::histogram!("stage.auth").observe_ns(t0.elapsed().as_nanos() as u64);
        }
        tspan.attr_bool("accepted", matches!(&outcome, Ok(d) if d.is_accepted()));
        outcome
    }

    /// The shared decision tail: score each beep's features, take the
    /// strict-majority vote, bump the accept/reject counters, and record
    /// exactly one [`AuthAudit`]. Both the raw-train path and the
    /// feature-level serving path funnel through here, so their
    /// decisions and audits cannot drift apart.
    #[allow(clippy::too_many_arguments)]
    fn vote_and_audit(
        &self,
        ctx: TraceCtx,
        features: &[Vec<f64>],
        attempt: &AuthAttempt,
        channels: u64,
        beeps: u64,
        mask: u64,
        spatial_coherence: Option<f64>,
    ) -> Result<AuthDecision, EchoImageError> {
        let mut counts: Vec<(usize, usize)> = Vec::new();
        let mut best_margin = f64::NEG_INFINITY;
        for f in features {
            if f.len() != self.scaler.dim() {
                let e = EchoImageError::InvalidParameter(
                    "feature vector does not match the enrolled dimensionality",
                );
                echo_obs::record_audit(AuthAudit {
                    trace: ctx.trace_id(),
                    tenant: None,
                    seq: 0,
                    claimed_user: attempt.claimed_user,
                    beeps,
                    votes: Vec::new(),
                    votes_needed: beeps / 2 + 1,
                    best_gate_margin: None,
                    channels,
                    degraded_mask: mask,
                    retry_index: attempt.retry_index,
                    verdict: AuthVerdict::Rejected,
                    reject_kind: RejectKind::CaptureScreen,
                    reject_reason: format!("pipeline error: {e}"),
                    spatial_coherence,
                });
                return Err(e);
            }
            let (decision, margin) = self.authenticate_scored(f);
            best_margin = best_margin.max(margin);
            if let AuthDecision::Accepted { user_id } = decision {
                match counts.iter_mut().find(|(id, _)| *id == user_id) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((user_id, 1)),
                }
            }
        }
        let decision = counts
            .iter()
            .max_by_key(|(_, n)| *n)
            .filter(|(_, n)| 2 * n > features.len())
            .map(|(id, _)| AuthDecision::Accepted { user_id: *id })
            .unwrap_or(AuthDecision::Rejected);
        if decision.is_accepted() {
            echo_obs::counter!("auth.accepted").inc();
        } else {
            echo_obs::counter!("auth.rejected").inc();
        }
        let mut votes: Vec<(u64, u64)> = counts
            .iter()
            .map(|&(id, n)| (id as u64, n as u64))
            .collect();
        votes.sort_by_key(|&(id, _)| id);
        let (verdict, kind, reason) = match decision {
            AuthDecision::Accepted { user_id } => (
                AuthVerdict::Accepted {
                    user_id: user_id as u64,
                },
                RejectKind::None,
                String::new(),
            ),
            AuthDecision::Rejected => {
                let (kind, reason) = match counts.iter().max_by_key(|(_, n)| *n) {
                    None => (
                        RejectKind::SpooferGate,
                        "spoofer gate rejected every beep".to_string(),
                    ),
                    Some((id, n)) => (
                        RejectKind::NoMajority,
                        format!(
                            "no strict majority: best candidate user {id} with {n}/{} accepting beeps",
                            features.len()
                        ),
                    ),
                };
                (AuthVerdict::Rejected, kind, reason)
            }
        };
        echo_obs::record_audit(AuthAudit {
            trace: ctx.trace_id(),
            tenant: None,
            seq: 0,
            claimed_user: attempt.claimed_user,
            beeps,
            votes,
            votes_needed: features.len() as u64 / 2 + 1,
            best_gate_margin: (!features.is_empty()).then_some(best_margin),
            channels,
            degraded_mask: mask,
            retry_index: attempt.retry_index,
            verdict,
            reject_kind: kind,
            reject_reason: reason,
            spatial_coherence,
        });
        Ok(decision)
    }

    /// [`Authenticator::authenticate_train`] with retry-on-degraded
    /// semantics: `provider(attempt)` supplies a fresh raw train for
    /// each attempt (attempt numbers start at 0), and only
    /// [`EchoImageError::DegradedCapture`] triggers a retry — any other
    /// error, and any decision, returns immediately. A smart speaker
    /// would re-beep here; the eval harness re-captures.
    ///
    /// # Errors
    ///
    /// The last [`EchoImageError::DegradedCapture`] once
    /// [`RetryPolicy::max_attempts`] trains have all been rejected as
    /// degraded, or the first non-degraded error.
    pub fn authenticate_train_with_retry<F>(
        &self,
        pipeline: &EchoImagePipeline,
        policy: &RetryPolicy,
        mut provider: F,
    ) -> Result<AuthDecision, EchoImageError>
    where
        F: FnMut(usize) -> Vec<BeepCapture>,
    {
        let root = echo_obs::root_span("auth.attempt");
        let ctx = root.ctx();
        let attempts = policy.max_attempts.max(1);
        let mut last = EchoImageError::DegradedCapture {
            healthy: 0,
            required: 0,
            mask: 0,
        };
        for attempt in 0..attempts {
            let _retry_span = (attempt > 0).then(|| {
                echo_obs::counter!("auth.retries").inc();
                echo_obs::span!("stage.auth_retry")
            });
            let captures = provider(attempt);
            let outcome = self.authenticate_train_traced(
                ctx,
                pipeline,
                &captures,
                AuthAttempt {
                    claimed_user: None,
                    retry_index: attempt as u64,
                },
            );
            match outcome {
                Err(e @ EchoImageError::DegradedCapture { .. }) => last = e,
                other => return other,
            }
        }
        Err(last)
    }

    /// The fitted feature scaler, for exporting the model into the
    /// template store (which freezes it across incremental enrolments).
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// The trained spoofer gates as `(svm, threshold, owner)` triples —
    /// the raw material [`crate::store`] serializes into per-user
    /// templates. Owner is `usize::MAX` for the user-agnostic pooled
    /// gate.
    pub fn gates(&self) -> &[(OneClassSvm, f64, usize)] {
        &self.gates
    }

    /// Registered user ids.
    pub fn user_ids(&self) -> Vec<usize> {
        match (&self.classifier, self.single_user) {
            (Some(svm), _) => svm.classes().to_vec(),
            (None, Some(id)) => vec![id],
            (None, None) => unreachable!("enroll guarantees one of the two"),
        }
    }
}

/// How many beep trains an authentication attempt may consume before a
/// degraded capture becomes a hard rejection.
///
/// Only [`EchoImageError::DegradedCapture`] is retried — a capture with
/// too few healthy microphones is a transient hardware/occlusion
/// condition worth one more beep, whereas every other error is
/// deterministic and would fail identically on retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RetryPolicy {
    /// Total trains attempted, including the first (minimum 1).
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 2 }
    }
}

/// Trains one user's per-group SVDD gates from already-scaled enrolment
/// groups, returning `(svm, threshold)` pairs in group order.
///
/// This is the per-user slice of [`Authenticator::enroll_with_groups`]'s
/// gate construction, factored out so the template store can train (or
/// retrain) a *single* user against a frozen scaler without touching
/// anyone else's model. The per-(user, group) kernel width works as
/// follows: a group that is the user's only mode is sized by its
/// internal spread; when a user has several modes (e.g. §V-F
/// synthesised distance clouds), each mode's radius additionally covers
/// the spacing to the nearest sibling mode — the modes are samples
/// along a continuum (distance), and authentication-time features fall
/// *between* them, not on them. Thresholds are self-calibrated to the
/// upper-quartile score the user's sibling modes achieve under each
/// gate (0 for single-mode users).
///
/// # Panics
///
/// Panics if any group is empty (the enrolment entry points validate
/// this before scaling).
pub fn train_user_gates(
    user_groups: &[Vec<Vec<f64>>],
    dim: usize,
    config: &AuthConfig,
) -> Vec<(OneClassSvm, f64)> {
    let group_gamma = |idx: usize| -> Kernel {
        if let Some(g) = config.gamma {
            return Kernel::Rbf { gamma: g };
        }
        let cloud = &user_groups[idx];
        let base = intra_rbf(std::slice::from_ref(cloud), dim);
        let Kernel::Rbf { gamma: g_intra } = base else {
            return base;
        };
        if user_groups.len() < 2 {
            return Kernel::Rbf { gamma: g_intra };
        }
        let mean = |c: &Vec<Vec<f64>>| -> Vec<f64> {
            let d = c[0].len();
            let mut m = vec![0.0; d];
            for x in c {
                for (mi, xi) in m.iter_mut().zip(x) {
                    *mi += xi;
                }
            }
            m.iter_mut().for_each(|v| *v /= c.len() as f64);
            m
        };
        let own = mean(cloud);
        let spacing2 = user_groups
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != idx)
            .map(|(_, other)| {
                let om = mean(other);
                own.iter()
                    .zip(&om)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        // Radius covers the full gap to the nearest sibling mode:
        // empirically the residual between a synthesised mode and
        // the real capture it stands in for is of the same order as
        // the displacement between neighbouring modes.
        let g_spacing = 1.0 / (GAMMA_WIDENING * spacing2.max(1e-12));
        Kernel::Rbf {
            gamma: g_intra.min(g_spacing),
        }
    };

    user_groups
        .iter()
        .enumerate()
        .map(|(idx, cloud)| {
            let svm = OneClassSvm::train(cloud, group_gamma(idx), config.nu);
            // Self-calibrate against sibling modes.
            let mut sibling_scores: Vec<f64> = user_groups
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != idx)
                .flat_map(|(_, other)| other.iter().map(|x| svm.decision(x)))
                .collect();
            let threshold = if sibling_scores.is_empty() {
                0.0
            } else {
                sibling_scores.sort_by(f64::total_cmp);
                sibling_scores[(sibling_scores.len() * 3) / 4].min(0.0)
            };
            (svm, threshold)
        })
        .collect()
}

/// Kernel-width safety margin: authentication-time samples sit a little
/// farther from the enrolment cloud than enrolment samples sit from each
/// other (fresh noise, fresh distance estimate, session drift), so the
/// acceptance region is widened by this factor over the raw intra-user
/// median distance.
const GAMMA_WIDENING: f64 = 2.0;

/// RBF kernel with `γ = 1/(GAMMA_WIDENING·median(‖xᵢ−xⱼ‖²))` over
/// within-group sample pairs, falling back to the 1/dim heuristic when
/// no group has two samples.
fn intra_rbf(groups: &[Vec<Vec<f64>>], dim: usize) -> Kernel {
    let mut d2: Vec<f64> = Vec::new();
    for cloud in groups {
        let n = cloud.len();
        // Subsample pairs per group to bound the cost.
        let stride = ((n * (n - 1) / 2) / 500).max(1);
        let mut count = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                if count.is_multiple_of(stride) {
                    d2.push(
                        cloud[i]
                            .iter()
                            .zip(&cloud[j])
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum(),
                    );
                }
                count += 1;
            }
        }
    }
    if d2.is_empty() {
        return Kernel::rbf_for_dim(dim);
    }
    d2.sort_by(f64::total_cmp);
    let median = d2[d2.len() / 2];
    Kernel::Rbf {
        gamma: if median > 1e-12 {
            1.0 / (GAMMA_WIDENING * median)
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(cx: f64, cy: f64, n: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                let a = ((h & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.4;
                let b = (((h >> 16) & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.4;
                vec![cx + a, cy + b]
            })
            .collect()
    }

    #[test]
    fn multi_user_flow_accepts_and_attributes() {
        let auth = Authenticator::enroll(
            &[
                (1, cluster(0.0, 0.0, 40, 1)),
                (2, cluster(3.0, 0.0, 40, 2)),
                (3, cluster(0.0, 3.0, 40, 3)),
            ],
            &AuthConfig::default(),
        )
        .unwrap();
        assert_eq!(auth.user_ids(), vec![1, 2, 3]);
        assert_eq!(auth.authenticate(&[0.05, -0.05]).user_id(), Some(1));
        assert_eq!(auth.authenticate(&[3.02, 0.1]).user_id(), Some(2));
        assert_eq!(auth.authenticate(&[0.0, 2.95]).user_id(), Some(3));
    }

    #[test]
    fn spoofers_are_gated_before_classification() {
        for gate in [GateMode::PerUser, GateMode::Pooled] {
            let auth = Authenticator::enroll(
                &[(1, cluster(0.0, 0.0, 40, 4)), (2, cluster(3.0, 0.0, 40, 5))],
                &AuthConfig {
                    gate,
                    ..AuthConfig::default()
                },
            )
            .unwrap();
            // A point far from every enrolled cluster must be rejected,
            // even though the n-class SVM would happily label it.
            assert_eq!(auth.authenticate(&[20.0, 20.0]), AuthDecision::Rejected);
            assert_eq!(auth.authenticate(&[-15.0, 2.0]), AuthDecision::Rejected);
        }
    }

    #[test]
    fn midpoint_between_users_is_rejected_by_per_user_gate() {
        let auth = Authenticator::enroll(
            &[(1, cluster(0.0, 0.0, 40, 6)), (2, cluster(4.0, 0.0, 40, 7))],
            &AuthConfig::default(),
        )
        .unwrap();
        assert_eq!(auth.authenticate(&[2.0, 0.0]), AuthDecision::Rejected);
    }

    #[test]
    fn single_user_scenario_uses_gate_only() {
        let auth = Authenticator::enroll(&[(7, cluster(1.0, 1.0, 50, 6))], &AuthConfig::default())
            .unwrap();
        assert_eq!(auth.user_ids(), vec![7]);
        assert_eq!(auth.authenticate(&[1.0, 1.05]).user_id(), Some(7));
        assert!(!auth.authenticate(&[8.0, -3.0]).is_accepted());
    }

    #[test]
    fn gate_decision_is_monotone_in_distance() {
        let auth = Authenticator::enroll(&[(1, cluster(0.0, 0.0, 50, 7))], &AuthConfig::default())
            .unwrap();
        // Stay within a few standard deviations: the RBF kernel saturates
        // to a constant −ρ far from the data.
        let near = auth.gate_decision(&[0.0, 0.1]);
        let mid = auth.gate_decision(&[0.4, 0.0]);
        let far = auth.gate_decision(&[0.9, 0.0]);
        assert!(near > mid, "{near} vs {mid}");
        assert!(mid > far, "{mid} vs {far}");
    }

    #[test]
    fn decision_accessors() {
        let acc = AuthDecision::Accepted { user_id: 4 };
        assert!(acc.is_accepted());
        assert_eq!(acc.user_id(), Some(4));
        assert!(!AuthDecision::Rejected.is_accepted());
        assert_eq!(AuthDecision::Rejected.user_id(), None);
    }

    #[test]
    fn explicit_gamma_is_respected() {
        let cfg = AuthConfig {
            gamma: Some(0.5),
            ..AuthConfig::default()
        };
        let train = cluster(0.0, 0.0, 20, 9);
        let auth = Authenticator::enroll(&[(1, train.clone())], &cfg).unwrap();
        // ν bounds training rejections: the bulk of the training points
        // must be accepted by the gate they defined.
        let accepted = train
            .iter()
            .filter(|x| auth.authenticate(x).is_accepted())
            .count();
        assert!(
            accepted * 2 > train.len(),
            "{accepted}/{} accepted",
            train.len()
        );
    }

    #[test]
    fn enrol_rejects_bad_input() {
        assert!(Authenticator::enroll(&[], &AuthConfig::default()).is_err());
        assert!(Authenticator::enroll(&[(1, vec![])], &AuthConfig::default()).is_err());
        assert!(Authenticator::enroll(
            &[(1, cluster(0.0, 0.0, 5, 8)), (1, cluster(1.0, 1.0, 5, 9))],
            &AuthConfig::default()
        )
        .is_err());
    }

    #[test]
    fn enrol_rejects_degenerate_feature_geometry() {
        // Zero-dimensional features.
        let zero_dim = vec![(1usize, vec![Vec::<f64>::new(); 5])];
        let err = Authenticator::enroll(&zero_dim, &AuthConfig::default()).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
        // Ragged dimensionality across users.
        let ragged = vec![
            (1usize, vec![vec![0.0, 0.0]; 5]),
            (2usize, vec![vec![1.0, 1.0, 1.0]; 5]),
        ];
        let err = Authenticator::enroll(&ragged, &AuthConfig::default()).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
    }

    #[test]
    fn authenticate_checked_rejects_wrong_dimensionality() {
        let auth = Authenticator::enroll(&[(1, cluster(0.0, 0.0, 20, 3))], &AuthConfig::default())
            .unwrap();
        let err = auth.authenticate_checked(&[0.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
        assert!(auth.authenticate_checked(&[0.0, 0.05]).is_ok());
    }

    #[test]
    fn retry_policy_defaults_to_one_retry() {
        assert_eq!(RetryPolicy::default().max_attempts, 2);
    }

    #[test]
    fn feature_level_auth_majority_votes_like_the_train_path() {
        let auth = Authenticator::enroll(
            &[(1, cluster(0.0, 0.0, 40, 1)), (2, cluster(3.0, 0.0, 40, 2))],
            &AuthConfig::default(),
        )
        .unwrap();
        let root = echo_obs::root_span("test");
        // Three beeps of user 1, none of anyone else: strict majority.
        let feats = vec![vec![0.05, 0.0], vec![-0.05, 0.05], vec![0.0, -0.05]];
        let d = auth
            .authenticate_features_traced(root.ctx(), &feats, AuthAttempt::default())
            .unwrap();
        assert_eq!(d.user_id(), Some(1));
        // One beep each of users 1 and 2 plus a spoofer: no majority.
        let split = vec![vec![0.0, 0.0], vec![3.0, 0.0], vec![20.0, 20.0]];
        let d = auth
            .authenticate_features_traced(root.ctx(), &split, AuthAttempt::default())
            .unwrap();
        assert_eq!(d, AuthDecision::Rejected);
    }

    #[test]
    fn feature_level_auth_rejects_empty_and_misshapen_input() {
        let auth = Authenticator::enroll(&[(1, cluster(0.0, 0.0, 20, 3))], &AuthConfig::default())
            .unwrap();
        let root = echo_obs::root_span("test");
        let err = auth
            .authenticate_features_traced(root.ctx(), &[], AuthAttempt::default())
            .unwrap_err();
        assert!(matches!(err, EchoImageError::NoCaptures));
        let bad = vec![vec![0.0, 0.0, 0.0]];
        let err = auth
            .authenticate_features_traced(root.ctx(), &bad, AuthAttempt::default())
            .unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
    }
}
