//! Decision fusion over a beep stream.
//!
//! One beep = one acoustic image = one [`AuthDecision`]. A deployed
//! speaker emits a beep every 0.5 s (§V-A) while the user interacts, so
//! decisions arrive as a stream; fusing them trades latency for
//! reliability. [`FusionPolicy`] implements quorum voting over a sliding
//! window — the natural "k of the last n beeps agree" rule.

use crate::auth::AuthDecision;
use std::collections::VecDeque;

/// Quorum-over-window fusion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FusionPolicy {
    /// Sliding-window length in beeps.
    pub window: usize,
    /// Minimum number of window decisions that must accept the *same*
    /// user for a fused accept.
    pub quorum: usize,
}

impl FusionPolicy {
    /// A sensible default: 3 of the last 5 beeps (≈2.5 s of probing at
    /// the paper's 0.5 s interval).
    pub fn default_3_of_5() -> Self {
        FusionPolicy {
            window: 5,
            quorum: 3,
        }
    }

    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `quorum` is 0 or exceeds `window`.
    pub fn validate(&self) {
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.quorum > 0 && self.quorum <= self.window,
            "quorum must lie in 1..=window"
        );
    }
}

/// The fused verdict after the most recent beep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FusedDecision {
    /// A user reached the quorum.
    Accepted {
        /// The accepted user.
        user_id: usize,
        /// How many window decisions voted for them.
        votes: usize,
    },
    /// No user reached the quorum (yet).
    Undecided,
    /// The window is full and no user reached the quorum.
    Rejected,
}

/// A streaming fusion session.
///
/// # Example
///
/// ```
/// use echoimage_core::auth::AuthDecision;
/// use echoimage_core::fusion::{AuthStream, FusedDecision, FusionPolicy};
///
/// let mut stream = AuthStream::new(FusionPolicy { window: 3, quorum: 2 });
/// assert_eq!(stream.push(AuthDecision::Accepted { user_id: 7 }), FusedDecision::Undecided);
/// assert_eq!(
///     stream.push(AuthDecision::Accepted { user_id: 7 }),
///     FusedDecision::Accepted { user_id: 7, votes: 2 }
/// );
/// ```
#[derive(Debug, Clone)]
pub struct AuthStream {
    policy: FusionPolicy,
    window: VecDeque<AuthDecision>,
}

impl AuthStream {
    /// Creates a session with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`FusionPolicy::validate`]).
    pub fn new(policy: FusionPolicy) -> Self {
        policy.validate();
        AuthStream {
            policy,
            window: VecDeque::with_capacity(policy.window),
        }
    }

    /// Number of decisions currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if no decisions have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (e.g. when the user walks away).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Pushes one per-beep decision and returns the fused verdict.
    pub fn push(&mut self, decision: AuthDecision) -> FusedDecision {
        if self.window.len() == self.policy.window {
            self.window.pop_front();
        }
        self.window.push_back(decision);
        self.verdict()
    }

    /// The current fused verdict.
    pub fn verdict(&self) -> FusedDecision {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for d in &self.window {
            if let AuthDecision::Accepted { user_id } = d {
                *counts.entry(*user_id).or_insert(0) += 1;
            }
        }
        if let Some((&user_id, &votes)) = counts.iter().max_by_key(|(_, &v)| v) {
            if votes >= self.policy.quorum {
                return FusedDecision::Accepted { user_id, votes };
            }
        }
        if self.window.len() == self.policy.window {
            FusedDecision::Rejected
        } else {
            FusedDecision::Undecided
        }
    }
}

/// One-shot fusion of a batch of per-beep decisions: accept the majority
/// user if they reach `quorum` votes.
pub fn fuse_batch(decisions: &[AuthDecision], quorum: usize) -> FusedDecision {
    let mut stream = AuthStream::new(FusionPolicy {
        window: decisions.len().max(1),
        quorum: quorum.clamp(1, decisions.len().max(1)),
    });
    let mut last = FusedDecision::Undecided;
    for &d in decisions {
        last = stream.push(d);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AuthDecision = AuthDecision::Accepted { user_id: 1 };
    const B: AuthDecision = AuthDecision::Accepted { user_id: 2 };
    const R: AuthDecision = AuthDecision::Rejected;

    #[test]
    fn quorum_accepts_majority_user() {
        let mut s = AuthStream::new(FusionPolicy {
            window: 5,
            quorum: 3,
        });
        s.push(A);
        s.push(R);
        s.push(A);
        assert_eq!(
            s.push(A),
            FusedDecision::Accepted {
                user_id: 1,
                votes: 3
            }
        );
    }

    #[test]
    fn split_votes_do_not_reach_quorum() {
        let mut s = AuthStream::new(FusionPolicy {
            window: 4,
            quorum: 3,
        });
        s.push(A);
        s.push(B);
        s.push(A);
        assert_eq!(s.push(B), FusedDecision::Rejected);
    }

    #[test]
    fn sliding_window_forgets_old_votes() {
        let mut s = AuthStream::new(FusionPolicy {
            window: 3,
            quorum: 2,
        });
        s.push(A);
        s.push(A); // accepted here
        s.push(R);
        s.push(R);
        // Window now [A, R, R] → rejected.
        assert_eq!(s.push(R), FusedDecision::Rejected);
    }

    #[test]
    fn undecided_until_window_fills_without_quorum() {
        let mut s = AuthStream::new(FusionPolicy {
            window: 4,
            quorum: 2,
        });
        assert_eq!(s.push(R), FusedDecision::Undecided);
        assert_eq!(s.push(A), FusedDecision::Undecided);
        assert_eq!(s.push(R), FusedDecision::Undecided);
        assert_eq!(s.push(R), FusedDecision::Rejected);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = AuthStream::new(FusionPolicy {
            window: 3,
            quorum: 2,
        });
        s.push(A);
        s.push(A);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.push(A), FusedDecision::Undecided);
    }

    #[test]
    fn batch_fusion() {
        assert_eq!(
            fuse_batch(&[A, R, A, A], 3),
            FusedDecision::Accepted {
                user_id: 1,
                votes: 3
            }
        );
        assert_eq!(fuse_batch(&[A, B, R, R], 2), FusedDecision::Rejected);
        assert_eq!(fuse_batch(&[], 1), FusedDecision::Undecided);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn invalid_policy_panics() {
        let _ = AuthStream::new(FusionPolicy {
            window: 2,
            quorum: 3,
        });
    }
}
