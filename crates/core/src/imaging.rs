//! Acoustic image construction (paper §V-C).
//!
//! A virtual square imaging plane is erected parallel to the x–o–z plane
//! at the estimated horizontal distance `D_p`, divided into K grid cells.
//! For each cell the array is steered (Eq. 11–12 give the cell's angles),
//! the beamformed signal is time-gated around the expected round-trip
//! delay `2·D_k/c ± d′` (only echoes whose path length matches the cell's
//! distance can come from the user's surface there), and the pixel value
//! is the L2 norm of the gated segment.

use crate::config::{BeamformerKind, PipelineConfig};
use crate::error::EchoImageError;
use crate::par::parallel_map_indexed;
use crate::steering_cache::steering_field;
use echo_array::MicArray;
use echo_beamform::{das_weights, MvdrDesigner, SpatialCovariance};
use echo_dsp::hilbert::analytic_signal;
use echo_dsp::{Complex, SPEED_OF_SOUND};
use echo_ml::GrayImage;
use echo_obs::TraceCtx;
use echo_sim::BeepCapture;

/// Constructs the acoustic image `AI_l` from one band-passed beep capture.
///
/// `horizontal_distance` is the `D_p` estimated by
/// [`crate::distance::estimate_distance`].
///
/// # Errors
///
/// * [`EchoImageError::InvalidParameter`] — non-positive distance or an
///   array/capture mismatch.
/// * [`EchoImageError::Beamforming`] — MVDR weight design failed.
///
/// # Example
///
/// ```
/// use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
/// use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
/// use echoimage_core::imaging::construct_image;
/// use echo_array::MicArray;
///
/// let scene = Scene::new(SceneConfig::laboratory_quiet(2));
/// let body = BodyModel::from_seed(5);
/// let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
/// let pipeline = EchoImagePipeline::new(PipelineConfig::default());
/// let filtered = pipeline.preprocess(&cap);
/// let image = construct_image(&filtered, &MicArray::respeaker_6(), 0.7, pipeline.config()).unwrap();
/// assert_eq!(image.width(), 32);
/// ```
pub fn construct_image(
    capture: &BeepCapture,
    array: &MicArray,
    horizontal_distance: f64,
    config: &PipelineConfig,
) -> Result<GrayImage, EchoImageError> {
    let cov = crate::distance::resolve_covariance(std::slice::from_ref(capture), array, config);
    construct_image_with_covariance(capture, array, horizontal_distance, &cov, config)
}

/// [`construct_image`] with an explicit noise covariance — used when one
/// covariance has been pooled over a whole beep train, which keeps the
/// MVDR weights (and therefore the image) stable from beep to beep.
///
/// # Errors
///
/// See [`construct_image`].
pub fn construct_image_with_covariance(
    capture: &BeepCapture,
    array: &MicArray,
    horizontal_distance: f64,
    cov: &SpatialCovariance,
    config: &PipelineConfig,
) -> Result<GrayImage, EchoImageError> {
    construct_image_with_covariance_traced(
        capture,
        array,
        horizontal_distance,
        cov,
        config,
        TraceCtx::none(),
        0,
    )
}

/// [`construct_image_with_covariance`] recording a `stage.imaging`
/// trace span as child `lidx` of `ctx` (grid size and channel count as
/// attributes; `lidx` is the beep index within its train).
///
/// Deliberately *no* steering-cache hit/miss attribute: beeps of a
/// train image in parallel and coalesce on one shared cache slot, so
/// *which* beep classifies as the miss is scheduler-dependent even
/// though the aggregate counters are not. Attributing it per-span would
/// break the thread-count determinism contract (see DESIGN.md §9).
///
/// # Errors
///
/// See [`construct_image`].
pub fn construct_image_with_covariance_traced(
    capture: &BeepCapture,
    array: &MicArray,
    horizontal_distance: f64,
    cov: &SpatialCovariance,
    config: &PipelineConfig,
    ctx: TraceCtx,
    lidx: u64,
) -> Result<GrayImage, EchoImageError> {
    if !(horizontal_distance.is_finite() && horizontal_distance > 0.0) {
        return Err(EchoImageError::InvalidParameter(
            "horizontal distance must be positive",
        ));
    }
    if capture.num_channels() != array.len() {
        return Err(EchoImageError::InvalidParameter(
            "array geometry does not match the capture channel count",
        ));
    }
    if capture.is_empty() {
        // A zero-sample capture would silently image to all-black; the
        // fault layer produces exactly these, so fail loudly instead.
        return Err(EchoImageError::InvalidParameter("capture holds no samples"));
    }
    let _span = echo_obs::span!("stage.imaging");
    let mut tspan = ctx.child_at("stage.imaging", lidx);
    tspan.attr_u64("grid_n", config.imaging.grid_n as u64);
    tspan.attr_u64("channels", array.len() as u64);
    echo_obs::counter!("pipeline.images_constructed").inc();

    let icfg = &config.imaging;
    let fs = capture.sample_rate();
    let f0 = config.beep.center_frequency();
    let n = capture.len();
    let m = array.len();

    // Analytic signals once per capture; reused for every grid cell.
    let analytic: Vec<Vec<Complex>> = (0..m)
        .map(|ch| analytic_signal(capture.channel(ch)))
        .collect();

    let guard = (icfg.safeguard * fs).round() as usize;
    let chirp_len = config.beep.chirp_samples();
    let preroll = capture.preroll();

    // The steering vectors and cell distances depend only on the sweep
    // geometry, not on this capture: fetch the shared field (computed
    // once per geometry, process-wide).
    let field = steering_field(array, icfg, horizontal_distance, f0);
    // MVDR inverts one covariance for the whole sweep; precompute it.
    // The designer feeds the identical inverse through the identical
    // arithmetic, so pixels match the per-cell `mvdr_weights` exactly.
    let designer = match icfg.beamformer {
        BeamformerKind::Mvdr => Some(MvdrDesigner::new(cov)?),
        BeamformerKind::DelayAndSum => None,
    };

    // Rows are independent; sweep them on the work pool. Reassembly is
    // by row index, so every thread count yields the same image.
    let rows: Vec<usize> = (0..icfg.grid_n).collect();
    let row_pixels = parallel_map_indexed(&rows, config.threads, |_, &row| {
        let mut pixels = vec![0.0f64; icfg.grid_n];
        for (col, px) in pixels.iter_mut().enumerate() {
            let cell = field.cell(col, row);
            let weights = match &designer {
                Some(d) => d.weights(&cell.steering)?,
                None => das_weights(&cell.steering),
            };

            // Time gate: echoes from this cell arrive after the round
            // trip 2·D_k/c (paper approximation: speaker ≈ array origin).
            let center = preroll as f64 + 2.0 * cell.distance / SPEED_OF_SOUND * fs;
            let start = (center as isize - guard as isize).max(0) as usize;
            let end = ((center as usize).saturating_add(guard + chirp_len)).min(n);
            if start >= end {
                continue;
            }

            // Beamform only the gated segment: y[n] = Σ_m w_m* x_m[n].
            let mut energy = 0.0;
            for t in start..end {
                let mut acc = Complex::ZERO;
                for (ch, &w) in analytic.iter().zip(weights.iter()) {
                    acc += w.conj() * ch[t];
                }
                // Pixel uses the real beamformed signal, as in the paper.
                energy += acc.re * acc.re;
            }
            *px = energy.sqrt();
        }
        Ok::<Vec<f64>, EchoImageError>(pixels)
    });

    let mut image = GrayImage::zeros(icfg.grid_n, icfg.grid_n);
    for (row, pixels) in row_pixels.into_iter().enumerate() {
        for (col, px) in pixels?.into_iter().enumerate() {
            image.set(col, row, px);
        }
    }
    Ok(image)
}

/// [`construct_image`] restricted to a microphone subset: the capture's
/// channels and the array's elements are both narrowed to `healthy`
/// (ascending original indices, at least two) before imaging, so a
/// capture with faulted channels images from its surviving microphones
/// instead of letting a dead or saturated element poison the sweep.
/// With a full mask this is exactly [`construct_image`].
///
/// # Errors
///
/// [`EchoImageError::InvalidParameter`] for a malformed mask (empty,
/// unsorted, out of range, or fewer than two survivors), plus every
/// [`construct_image`] error.
pub fn construct_image_masked(
    capture: &BeepCapture,
    array: &MicArray,
    healthy: &[usize],
    horizontal_distance: f64,
    config: &PipelineConfig,
) -> Result<GrayImage, EchoImageError> {
    validate_mask(capture, array, healthy)?;
    if healthy.len() == array.len() {
        return construct_image(capture, array, horizontal_distance, config);
    }
    let sub_capture = capture.select_channels(healthy);
    let sub_array = array.subset(healthy);
    construct_image(&sub_capture, &sub_array, horizontal_distance, config)
}

/// Checks a mic-subset mask against a capture/array pair.
pub(crate) fn validate_mask(
    capture: &BeepCapture,
    array: &MicArray,
    healthy: &[usize],
) -> Result<(), EchoImageError> {
    if capture.num_channels() != array.len() {
        return Err(EchoImageError::InvalidParameter(
            "array geometry does not match the capture channel count",
        ));
    }
    if healthy.len() < 2 {
        return Err(EchoImageError::InvalidParameter(
            "a mic-subset mask needs at least two microphones",
        ));
    }
    if !healthy.windows(2).all(|w| w[0] < w[1]) {
        return Err(EchoImageError::InvalidParameter(
            "mic-subset mask must be strictly increasing",
        ));
    }
    if healthy.iter().any(|&m| m >= array.len()) {
        return Err(EchoImageError::InvalidParameter(
            "mic-subset mask names a microphone outside the array",
        ));
    }
    Ok(())
}

/// The cell-to-origin distance `D_k = √(x_k² + D_p² + z_k²)` used both by
/// the time gate and by the inverse-square augmentation (Eq. 13–14).
pub fn cell_distance(x_k: f64, d_p: f64, z_k: f64) -> f64 {
    (x_k * x_k + d_p * d_p + z_k * z_k).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EchoImagePipeline;
    use echo_dsp::stats::cosine_similarity;
    use echo_sim::{BodyModel, Placement, Scene, SceneConfig};

    fn image_for(body_seed: u64, beep: u64, distance: f64) -> GrayImage {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let body = BodyModel::from_seed(body_seed);
        let cap = scene.capture_beep(&body, &Placement::standing_front(distance), 0, beep);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let filtered = pipeline.preprocess(&cap);
        construct_image(
            &filtered,
            &MicArray::respeaker_6(),
            distance,
            pipeline.config(),
        )
        .unwrap()
    }

    #[test]
    fn image_has_configured_size_and_finite_pixels() {
        let img = image_for(1, 0, 0.7);
        assert_eq!(img.width(), 32);
        assert_eq!(img.height(), 32);
        assert!(img.pixels().iter().all(|p| p.is_finite() && *p >= 0.0));
        assert!(img.pixels().iter().any(|p| *p > 0.0));
    }

    #[test]
    fn same_user_images_are_similar_across_beeps() {
        // Paper Fig. 8: images of one user are very similar, images of
        // different users differ significantly.
        // Different beep indices everywhere: no two real recordings share
        // an ambient-noise realisation. Similarity is measured on
        // mean-centred pixels — the raw cosine is dominated by the common
        // positive "standing person" blob every image shares.
        let a0 = image_for(1, 0, 0.7);
        let a1 = image_for(1, 1, 0.7);
        let b0 = image_for(2, 7, 0.7);
        let centred = |i: &GrayImage| -> Vec<f64> {
            let m = i.mean();
            i.pixels().iter().map(|p| p - m).collect()
        };
        let same = cosine_similarity(&centred(&a0), &centred(&a1));
        let cross = cosine_similarity(&centred(&a0), &centred(&b0));
        assert!(same > 0.9, "same-user similarity {same}");
        assert!(same > cross, "same {same} vs cross {cross}");
    }

    #[test]
    fn body_region_is_brighter_than_plane_edges() {
        // Pixels in the central body region should carry more energy
        // than the extreme corners of the plane.
        let img = image_for(3, 0, 0.7);
        let n = img.width();
        let center_band: f64 = (n / 4..3 * n / 4)
            .flat_map(|r| (n / 4..3 * n / 4).map(move |c| (c, r)))
            .map(|(c, r)| img.get(c, r))
            .sum();
        let corners: f64 = [(0, 0), (n - 1, 0), (0, n - 1), (n - 1, n - 1)]
            .iter()
            .map(|&(c, r)| img.get(c, r))
            .sum::<f64>()
            * ((n / 2) * (n / 2)) as f64
            / 4.0;
        assert!(
            center_band > corners * 0.8,
            "centre {center_band} vs corner-scaled {corners}"
        );
    }

    #[test]
    fn das_and_mvdr_images_differ() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let body = BodyModel::from_seed(4);
        let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let filtered = pipeline.preprocess(&cap);
        let mvdr =
            construct_image(&filtered, &MicArray::respeaker_6(), 0.7, pipeline.config()).unwrap();
        let mut das_cfg = pipeline.config().clone();
        das_cfg.imaging.beamformer = BeamformerKind::DelayAndSum;
        let das = construct_image(&filtered, &MicArray::respeaker_6(), 0.7, &das_cfg).unwrap();
        assert_ne!(mvdr, das);
    }

    #[test]
    fn cell_distance_formula() {
        assert!((cell_distance(0.3, 0.7, -0.2) - (0.09f64 + 0.49 + 0.04).sqrt()).abs() < 1e-12);
        assert_eq!(cell_distance(0.0, 1.0, 0.0), 1.0);
    }

    #[test]
    fn negative_distance_is_rejected() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let cap = scene.capture_empty(0, 0);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let err =
            construct_image(&cap, &MicArray::respeaker_6(), -0.5, pipeline.config()).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
    }

    #[test]
    fn empty_scene_image_is_darker_than_body_image() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let body = BodyModel::from_seed(5);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let with =
            pipeline.preprocess(&scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0));
        let without = pipeline.preprocess(&scene.capture_empty(0, 0));
        let img_with =
            construct_image(&with, &MicArray::respeaker_6(), 0.7, pipeline.config()).unwrap();
        let img_without =
            construct_image(&without, &MicArray::respeaker_6(), 0.7, pipeline.config()).unwrap();
        let sum = |i: &GrayImage| i.pixels().iter().sum::<f64>();
        assert!(sum(&img_with) > 2.0 * sum(&img_without));
    }
}
