//! Inverse-square data augmentation (paper §V-F).
//!
//! Collecting enrolment images at every possible distance would burden
//! the user, so the paper synthesises training images at new distances
//! from images captured at one distance: for each grid cell the pixel is
//! rescaled by the inverse-square law,
//! `P′_k = (D_k / D′_k)² · P_k` (Eq. 15), where `D_k` and `D′_k` are the
//! cell-to-origin distances of the source and target planes (Eq. 13–14).

use crate::config::ImagingConfig;
use crate::error::EchoImageError;
use crate::imaging::cell_distance;
use echo_ml::GrayImage;

/// Synthesises the acoustic image the user would produce at distance
/// `d_p_to`, given a real image captured at `d_p_from`.
///
/// # Errors
///
/// Returns [`EchoImageError::InvalidParameter`] when either distance is
/// non-positive or the image does not match `config`'s grid.
///
/// # Example
///
/// ```
/// use echoimage_core::augment::augment_to_distance;
/// use echoimage_core::config::ImagingConfig;
/// use echo_ml::GrayImage;
///
/// let cfg = ImagingConfig::default();
/// let img = GrayImage::from_fn(cfg.grid_n, cfg.grid_n, |x, y| (x + y) as f64);
/// let farther = augment_to_distance(&img, &cfg, 0.7, 1.4).unwrap();
/// // Moving away shrinks every pixel (inverse-square).
/// assert!(farther.pixels().iter().sum::<f64>() < img.pixels().iter().sum::<f64>());
/// ```
pub fn augment_to_distance(
    image: &GrayImage,
    config: &ImagingConfig,
    d_p_from: f64,
    d_p_to: f64,
) -> Result<GrayImage, EchoImageError> {
    if !(d_p_from.is_finite() && d_p_from > 0.0 && d_p_to.is_finite() && d_p_to > 0.0) {
        return Err(EchoImageError::InvalidParameter(
            "augmentation distances must be positive",
        ));
    }
    if image.width() != config.grid_n || image.height() != config.grid_n {
        return Err(EchoImageError::InvalidParameter(
            "image size does not match the imaging grid",
        ));
    }
    let mut out = GrayImage::zeros(image.width(), image.height());
    for row in 0..config.grid_n {
        for col in 0..config.grid_n {
            let (x_k, z_k) = config.cell_center(col, row);
            let d_k = cell_distance(x_k, d_p_from, z_k);
            let d_k_to = cell_distance(x_k, d_p_to, z_k);
            let scale = (d_k / d_k_to) * (d_k / d_k_to);
            out.set(col, row, image.get(col, row) * scale);
        }
    }
    Ok(out)
}

/// Synthesises images at each distance in `targets` from one source
/// image — the enrolment-time augmentation sweep.
///
/// # Errors
///
/// Propagates the first [`EchoImageError::InvalidParameter`] from
/// [`augment_to_distance`].
pub fn augment_sweep(
    image: &GrayImage,
    config: &ImagingConfig,
    d_p_from: f64,
    targets: &[f64],
) -> Result<Vec<GrayImage>, EchoImageError> {
    targets
        .iter()
        .map(|&d| augment_to_distance(image, config, d_p_from, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ImagingConfig {
        ImagingConfig::default()
    }

    fn test_image(c: &ImagingConfig) -> GrayImage {
        GrayImage::from_fn(c.grid_n, c.grid_n, |x, y| {
            1.0 + ((x * 7 + y * 3) % 13) as f64
        })
    }

    #[test]
    fn identity_augmentation_is_noop() {
        let c = cfg();
        let img = test_image(&c);
        let same = augment_to_distance(&img, &c, 0.7, 0.7).unwrap();
        for (a, b) in img.pixels().iter().zip(same.pixels()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_recovers_original() {
        let c = cfg();
        let img = test_image(&c);
        let there = augment_to_distance(&img, &c, 0.7, 1.2).unwrap();
        let back = augment_to_distance(&there, &c, 1.2, 0.7).unwrap();
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn moving_closer_brightens_moving_away_darkens() {
        let c = cfg();
        let img = test_image(&c);
        let closer = augment_to_distance(&img, &c, 1.0, 0.6).unwrap();
        let farther = augment_to_distance(&img, &c, 1.0, 1.5).unwrap();
        for ((orig, near), far) in img
            .pixels()
            .iter()
            .zip(closer.pixels())
            .zip(farther.pixels())
        {
            assert!(near > orig);
            assert!(far < orig);
        }
    }

    #[test]
    fn center_cell_scales_by_pure_inverse_square() {
        let c = cfg();
        let mut img = GrayImage::zeros(c.grid_n, c.grid_n);
        // The cell nearest the plane centre.
        let mid = c.grid_n / 2;
        img.set(mid, mid, 100.0);
        let out = augment_to_distance(&img, &c, 0.7, 1.4).unwrap();
        let (x_k, z_k) = c.cell_center(mid, mid);
        let expect = 100.0 * (cell_distance(x_k, 0.7, z_k) / cell_distance(x_k, 1.4, z_k)).powi(2);
        assert!((out.get(mid, mid) - expect).abs() < 1e-9);
        // Off-centre cells scale by *less* than (0.7/1.4)⁻²'s reciprocal
        // because their lateral offset dilutes the distance change.
        assert!(expect > 100.0 * (0.7f64 / 1.4).powi(2));
    }

    #[test]
    fn sweep_generates_one_image_per_target() {
        let c = cfg();
        let img = test_image(&c);
        let targets = [0.6, 0.8, 1.0, 1.2];
        let out = augment_sweep(&img, &c, 0.7, &targets).unwrap();
        assert_eq!(out.len(), 4);
        for o in &out {
            assert_eq!(o.width(), c.grid_n);
        }
    }

    #[test]
    fn invalid_distances_are_rejected() {
        let c = cfg();
        let img = test_image(&c);
        assert!(augment_to_distance(&img, &c, 0.0, 1.0).is_err());
        assert!(augment_to_distance(&img, &c, 1.0, -1.0).is_err());
        assert!(augment_to_distance(&img, &c, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn mismatched_grid_is_rejected() {
        let c = cfg();
        let img = GrayImage::zeros(c.grid_n + 1, c.grid_n);
        assert!(augment_to_distance(&img, &c, 0.7, 1.0).is_err());
    }
}
