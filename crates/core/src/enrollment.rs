//! The production enrolment recipe.
//!
//! Registering a user is more than running captures through
//! [`crate::pipeline::EchoImagePipeline::features_from_train`]: to
//! survive day-to-day drift and distance-estimate jitter, the enrolment
//! cloud must *span* the variation authentication-time probes will
//! carry. The recipe, validated by the evaluation suite:
//!
//! 1. **Multiple visits** — capture several independent beep batches
//!    (fresh stance, fresh noise, fresh distance estimate). The paper's
//!    own Session 1 spans days 0–2.
//! 2. **Plane diversity** — re-image each batch at slightly perturbed
//!    plane distances, covering the test-time ranging jitter.
//! 3. **§V-F augmentation** — synthesise inverse-square copies around
//!    the estimated distance.

use crate::augment::augment_sweep;
use crate::error::EchoImageError;
use crate::health::ChannelHealth;
use crate::pipeline::EchoImagePipeline;
use echo_obs::TraceCtx;
use echo_sim::BeepCapture;

/// Tunables of the enrolment recipe.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnrollmentConfig {
    /// Plane-distance offsets for re-imaging each capture, metres.
    pub plane_offsets: Vec<f64>,
    /// Distance offsets for inverse-square synthesis, metres.
    pub augment_offsets: Vec<f64>,
}

impl Default for EnrollmentConfig {
    fn default() -> Self {
        EnrollmentConfig {
            plane_offsets: vec![-0.03, 0.03],
            augment_offsets: vec![-0.05, 0.05],
        }
    }
}

/// Turns one user's enrolment visits into the feature cloud to hand to
/// [`crate::auth::Authenticator::enroll`].
///
/// `visits` holds one beep train per registration visit; each visit is
/// ranged and imaged independently.
///
/// # Errors
///
/// Propagates pipeline failures — enrolment happens under controlled
/// conditions, so a failed visit is a real error the caller should
/// surface (and re-capture).
///
/// # Example
///
/// ```
/// use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
/// use echoimage_core::enrollment::{enrollment_features, EnrollmentConfig};
/// use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
///
/// let scene = Scene::new(SceneConfig::laboratory_quiet(5));
/// let user = BodyModel::from_seed(8);
/// let placement = Placement::standing_front(0.7);
/// let visits: Vec<_> = (0..2u32)
///     .map(|v| scene.capture_train(&user, &placement, v, 3, v as u64 * 100))
///     .collect();
///
/// let pipeline = EchoImagePipeline::new(PipelineConfig::default());
/// let features =
///     enrollment_features(&pipeline, &visits, &EnrollmentConfig::default()).unwrap();
/// // 2 visits × 3 beeps × (1 + 2 planes) images, plus 2 augmented
/// // copies per image.
/// assert_eq!(features.len(), 2 * 3 * 3 * (1 + 2));
/// ```
pub fn enrollment_features(
    pipeline: &EchoImagePipeline,
    visits: &[Vec<BeepCapture>],
    config: &EnrollmentConfig,
) -> Result<Vec<Vec<f64>>, EchoImageError> {
    let root = echo_obs::root_span("enroll.user");
    let ctx = root.ctx();
    enrollment_features_traced(ctx, pipeline, visits, config)
}

/// [`enrollment_features`] recording its stage spans as children of
/// `ctx` instead of minting a fresh trace — used when many users enrol
/// in parallel under one batch trace. Each visit gets an
/// `enroll.visit` span indexed by visit number.
pub fn enrollment_features_traced(
    ctx: TraceCtx,
    pipeline: &EchoImagePipeline,
    visits: &[Vec<BeepCapture>],
    config: &EnrollmentConfig,
) -> Result<Vec<Vec<f64>>, EchoImageError> {
    if visits.is_empty() || visits.iter().any(|v| v.is_empty()) {
        return Err(EchoImageError::NoCaptures);
    }
    let _span = echo_obs::span!("stage.enroll");
    let imaging = &pipeline.config().imaging;
    // Gather every image (captured, re-planed, and augmented) first,
    // then extract features in one batch over the configured thread
    // count. The gather order — per visit, per image: base then its
    // augmented copies — matches the feature order of the serial recipe.
    let mut gathered = Vec::new();
    for (v, visit) in visits.iter().enumerate() {
        let mut vspan = ctx.child_at("enroll.visit", v as u64);
        vspan.attr_u64("beeps", visit.len() as u64);
        let (images, est) = pipeline.images_from_train_multi_plane_traced(
            vspan.ctx(),
            visit,
            &config.plane_offsets,
        )?;
        for img in images {
            let synth = if config.augment_offsets.is_empty() {
                Vec::new()
            } else {
                let targets: Vec<f64> = config
                    .augment_offsets
                    .iter()
                    .map(|o| (est.horizontal_distance + o).max(0.2))
                    .collect();
                augment_sweep(&img, imaging, est.horizontal_distance, &targets)?
            };
            gathered.push(img);
            gathered.extend(synth);
        }
    }
    Ok(pipeline.features_batch_traced(ctx, &gathered))
}

/// [`enrollment_features`] with channel-health screening: microphones
/// that are unhealthy in *any* visit are excised, and the whole recipe
/// (ranging, plane diversity, augmentation) runs on the surviving
/// subset. A hardware fault is persistent, so a user enrolling on a
/// degraded device builds their template in the same mic-subset feature
/// space their authentication probes will occupy.
///
/// Returns the features together with the pooled [`ChannelHealth`] so
/// the caller can record which microphones the template excludes.
///
/// # Errors
///
/// * [`EchoImageError::DegradedCapture`] — too few healthy microphones
///   to enrol at all.
/// * Everything [`enrollment_features`] can return.
pub fn enrollment_features_degraded(
    pipeline: &EchoImagePipeline,
    visits: &[Vec<BeepCapture>],
    config: &EnrollmentConfig,
) -> Result<(Vec<Vec<f64>>, ChannelHealth), EchoImageError> {
    let root = echo_obs::root_span("enroll.user");
    let ctx = root.ctx();
    enrollment_features_degraded_traced(ctx, pipeline, visits, config)
}

/// [`enrollment_features_degraded`] under an existing trace context.
pub fn enrollment_features_degraded_traced(
    ctx: TraceCtx,
    pipeline: &EchoImagePipeline,
    visits: &[Vec<BeepCapture>],
    config: &EnrollmentConfig,
) -> Result<(Vec<Vec<f64>>, ChannelHealth), EchoImageError> {
    if visits.is_empty() || visits.iter().any(|v| v.is_empty()) {
        return Err(EchoImageError::NoCaptures);
    }
    let all: Vec<BeepCapture> = visits.iter().flatten().cloned().collect();
    let mut sspan = ctx.child("stage.health_screen");
    let health = pipeline.screen_train(&all)?;
    sspan.attr_u64("channels", health.num_channels() as u64);
    sspan.attr_u64("healthy", health.num_healthy() as u64);
    sspan.attr_u64("excised_mask", health.excised_mask());
    drop(sspan);
    if health.all_healthy() {
        return Ok((
            enrollment_features_traced(ctx, pipeline, visits, config)?,
            health,
        ));
    }
    let healthy = health.healthy_indices();
    let required = pipeline.config().health.min_mics.max(2);
    if healthy.len() < required {
        return Err(EchoImageError::DegradedCapture {
            healthy: healthy.len(),
            required,
            mask: health.excised_mask(),
        });
    }
    let sub_pipeline =
        EchoImagePipeline::with_array(pipeline.config().clone(), pipeline.array().subset(&healthy));
    let sub_visits: Vec<Vec<BeepCapture>> = visits
        .iter()
        .map(|v| v.iter().map(|c| c.select_channels(&healthy)).collect())
        .collect();
    Ok((
        enrollment_features_traced(ctx, &sub_pipeline, &sub_visits, config)?,
        health,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{AuthConfig, Authenticator};
    use crate::config::{ImagingConfig, PipelineConfig};
    use echo_sim::{BodyModel, Placement, Scene, SceneConfig};

    fn small_pipeline() -> EchoImagePipeline {
        let cfg = PipelineConfig {
            imaging: ImagingConfig {
                grid_n: 16,
                grid_spacing: 0.1,
                ..ImagingConfig::default()
            },
            ..PipelineConfig::default()
        };
        EchoImagePipeline::new(cfg)
    }

    fn visits(
        scene: &Scene,
        body: &BodyModel,
        count: u32,
        beeps: usize,
    ) -> Vec<Vec<echo_sim::BeepCapture>> {
        let placement = Placement::standing_front(0.7);
        (0..count)
            .map(|v| scene.capture_train(body, &placement, v, beeps, v as u64 * 500))
            .collect()
    }

    #[test]
    fn feature_counts_match_recipe() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let body = BodyModel::from_seed(3);
        let p = small_pipeline();
        let v = visits(&scene, &body, 2, 2);
        let cfg = EnrollmentConfig::default();
        let f = enrollment_features(&p, &v, &cfg).unwrap();
        // 2 visits × 2 beeps × 3 planes × (1 base + 2 augmented).
        assert_eq!(f.len(), 2 * 2 * 3 * 3);
    }

    #[test]
    fn recipe_enrolment_accepts_fresh_visits() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let body = BodyModel::from_seed(4);
        let p = small_pipeline();
        let v = visits(&scene, &body, 3, 3);
        let features = enrollment_features(&p, &v, &EnrollmentConfig::default()).unwrap();
        let auth = Authenticator::enroll(&[(1, features)], &AuthConfig::default()).unwrap();

        let fresh = scene.capture_train(&body, &Placement::standing_front(0.7), 8, 3, 77_000);
        let probes = p.features_from_train(&fresh).unwrap();
        let accepted = probes
            .iter()
            .filter(|f| auth.authenticate(f).is_accepted())
            .count();
        assert!(accepted > 0, "no fresh probe accepted");
    }

    #[test]
    fn disabling_augmentation_shrinks_the_cloud() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(9));
        let body = BodyModel::from_seed(5);
        let p = small_pipeline();
        let v = visits(&scene, &body, 1, 2);
        let with = enrollment_features(&p, &v, &EnrollmentConfig::default()).unwrap();
        let without = enrollment_features(
            &p,
            &v,
            &EnrollmentConfig {
                augment_offsets: vec![],
                ..EnrollmentConfig::default()
            },
        )
        .unwrap();
        assert!(with.len() > without.len());
    }

    #[test]
    fn zero_sample_visit_errors_instead_of_panicking() {
        let p = small_pipeline();
        let degenerate = vec![vec![BeepCapture::new(vec![Vec::new(); 6], 48_000.0, 0)]];
        let err = enrollment_features(&p, &degenerate, &EnrollmentConfig::default()).unwrap_err();
        assert!(matches!(err, EchoImageError::InvalidParameter(_)));
    }

    #[test]
    fn empty_visits_error() {
        let p = small_pipeline();
        assert!(matches!(
            enrollment_features(&p, &[], &EnrollmentConfig::default()),
            Err(EchoImageError::NoCaptures)
        ));
        assert!(matches!(
            enrollment_features(&p, &[vec![]], &EnrollmentConfig::default()),
            Err(EchoImageError::NoCaptures)
        ));
    }
}
