//! Bit-level determinism of the batched feature path.
//!
//! The im2col+GEMM forward pass, the batched extractors, the FFT plan
//! cache, and the chirp-template cache are all claimed bit-identical to
//! their serial / per-call counterparts. These tests hold the claims to
//! `f64::to_bits` equality, because an enrolment template must not
//! depend on core count, batch size, or warm caches.
//!
//! The thread count under test comes from `ECHOIMAGE_THREADS` (default
//! `0`, auto), so CI runs the same suite pinned serial and with the
//! pool; the reference inside each test is always `threads = 1`.

use echo_ml::GrayImage;
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::config::ImagingConfig;
use echoimage_core::features::ImageFeatures;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::template_cache;

/// Worker threads for the path under test (`ECHOIMAGE_THREADS`,
/// default auto).
fn pool_threads() -> usize {
    echoimage_core::par::threads_from_env().expect("invalid ECHOIMAGE_THREADS")
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads,
        ..PipelineConfig::default()
    }
}

fn test_images(count: usize) -> Vec<GrayImage> {
    (0..count)
        .map(|k| {
            GrayImage::from_fn(30 + k % 7, 25 + (k * 3) % 11, move |x, y| {
                ((x * 13 + y * 7 + k * 29) % 61) as f64 / 3.0
            })
        })
        .collect()
}

fn assert_features_bit_identical(a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.len(), y.len());
        for (p, q) in x.iter().zip(y.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "feature bits diverged");
        }
    }
}

#[test]
fn batch_extraction_matches_serial_at_pool_threads() {
    let fx = ImageFeatures::new();
    let images = test_images(9);
    let serial: Vec<Vec<f64>> = images.iter().map(|i| fx.extract(i)).collect();
    let batched = fx.extract_batch_threaded(&images, pool_threads());
    assert_features_bit_identical(&serial, &batched);
}

#[test]
fn batch_size_does_not_change_features() {
    // The same image must produce the same bits whether extracted
    // alone, at the front of a batch, or buried in a bigger batch
    // (scratch arenas must not leak state between images).
    let fx = ImageFeatures::new();
    let images = test_images(8);
    let alone = fx.extract(&images[5]);
    for batch_size in [2usize, 4, 8] {
        let batch = fx.extract_batch_threaded(&images[..batch_size.max(6)], pool_threads());
        if batch.len() > 5 {
            assert_features_bit_identical(std::slice::from_ref(&alone), &batch[5..6]);
        }
    }
    let full = fx.extract_batch(&images);
    assert_features_bit_identical(std::slice::from_ref(&alone), &full[5..6]);
}

#[test]
fn train_features_match_serial_reference_end_to_end() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(17));
    let body = BodyModel::from_seed(23);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 3, 0);

    let serial = EchoImagePipeline::new(config(1))
        .features_from_train(&caps)
        .unwrap();
    let pooled = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    assert_features_bit_identical(&serial, &pooled);
}

#[test]
fn distance_is_bit_identical_across_template_cache_states() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(13));
    let body = BodyModel::from_seed(5);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.8), 0, 2, 0);
    let pipeline = EchoImagePipeline::new(config(pool_threads()));

    template_cache::clear_template_cache();
    let cold = pipeline.estimate_distance(&caps).unwrap();
    assert!(template_cache::template_cache_len() >= 1, "plan was cached");
    let warm = pipeline.estimate_distance(&caps).unwrap();

    assert_eq!(
        cold.horizontal_distance.to_bits(),
        warm.horizontal_distance.to_bits()
    );
    assert_eq!(cold.direct_peak, warm.direct_peak);
    assert_eq!(cold.echo_peak, warm.echo_peak);
    assert_eq!(cold.envelope.len(), warm.envelope.len());
    for (a, b) in cold.envelope.iter().zip(warm.envelope.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "envelope bits diverged");
    }
}
