//! Determinism of the flight recorder.
//!
//! Wall-clock span timings (`start_ns`, `dur_ns`) are explicitly
//! outside the determinism contract, but everything else the recorder
//! emits is *logical*: span ids are hashes of (parent, name, logical
//! index), sequence numbers come from the canonical depth-first walk,
//! and audit records describe decisions, not schedules. These tests pin
//! the contract: identical span trees, sequence numbers and audit
//! records across worker-thread counts, cold/warm caches (structure
//! only — cache-hit attributes legitimately differ), sampling rates
//! (a sampled run is the exact kept-subset of the full run), and the
//! disabled recorder (zero events, bit-identical pipeline output).
//!
//! The recorder and the process caches are global, so every test
//! serialises on one lock and starts from a cleared state.

use std::sync::{Mutex, MutexGuard};

use echo_obs::SpanEvent;
use echo_sim::fault::{ChannelFault, FaultKind, FaultPlan};
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::auth::Authenticator;
use echoimage_core::config::ImagingConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{steering_cache, template_cache};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialises the test, clears every process cache, and arms a fresh
/// recorder. The returned guard restores the recorder's defaults
/// (tracing off, keep-every-trace sampling) when the test ends, pass or
/// fail.
struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Armed {
    fn drop(&mut self) {
        echo_obs::set_trace_enabled(false);
        echo_obs::set_trace_sampling(1);
        echo_obs::set_enabled(true);
        echo_obs::reset_traces();
    }
}

fn guard() -> Armed {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_caches();
    echo_obs::set_enabled(true);
    echo_obs::reset();
    echo_obs::set_trace_enabled(true);
    echo_obs::set_trace_sampling(1);
    echo_obs::reset_traces();
    Armed(g)
}

fn clear_caches() {
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
}

/// Worker threads for the path under test (`ECHOIMAGE_THREADS`,
/// default auto).
fn pool_threads() -> usize {
    echoimage_core::par::threads_from_env().expect("invalid ECHOIMAGE_THREADS")
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads,
        ..PipelineConfig::default()
    }
}

fn capture_train(beeps: usize) -> Vec<echo_sim::BeepCapture> {
    let scene = Scene::new(SceneConfig::laboratory_quiet(11));
    let body = BodyModel::from_seed(29);
    scene.capture_train(&body, &Placement::standing_front(0.7), 0, beeps, 0)
}

/// Everything the determinism contract covers about a span: identity,
/// tree position and attributes — timestamps deliberately excluded.
fn span_identity(ev: &SpanEvent) -> (u64, u64, u64, u64, &'static str, u64, String) {
    (
        ev.trace,
        ev.seq,
        ev.span,
        ev.parent,
        ev.name,
        ev.lidx,
        format!("{:?}", ev.attrs),
    )
}

/// Structure only: the tree shape without attributes, for comparisons
/// where cache-hit attributes legitimately differ (cold vs warm).
fn span_shape(ev: &SpanEvent) -> (u64, u64, u64, u64, &'static str, u64) {
    (ev.trace, ev.seq, ev.span, ev.parent, ev.name, ev.lidx)
}

fn assert_features_bit_identical(a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.len(), y.len());
        for (p, q) in x.iter().zip(y.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "feature bits diverged");
        }
    }
}

#[test]
fn span_trees_identical_across_thread_counts() {
    let _g = guard();
    let caps = capture_train(3);
    // Capture-time spans belong to neither run.
    echo_obs::reset_traces();

    EchoImagePipeline::new(config(1))
        .features_from_train(&caps)
        .unwrap();
    let serial: Vec<_> = echo_obs::take_spans().iter().map(span_identity).collect();

    clear_caches();
    echo_obs::reset_traces();
    EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    let pooled: Vec<_> = echo_obs::take_spans().iter().map(span_identity).collect();

    assert!(!serial.is_empty(), "the workload must record spans");
    assert_eq!(
        serial, pooled,
        "span trees must not depend on the worker-thread count"
    );
    // Sanity: the tree has the expected members — one root, a distance
    // stage, and one imaging span per beep.
    let names: Vec<&str> = serial.iter().map(|s| s.4).collect();
    assert_eq!(
        names
            .iter()
            .filter(|n| **n == "pipeline.features_from_train")
            .count(),
        1
    );
    assert_eq!(names.iter().filter(|n| **n == "stage.distance").count(), 1);
    assert_eq!(names.iter().filter(|n| **n == "stage.imaging").count(), 3);
    // The root is seq 0 of trace 1 with no parent.
    assert_eq!((serial[0].0, serial[0].1, serial[0].3), (1, 0, 0));
}

#[test]
fn warm_caches_change_attributes_but_not_structure() {
    let _g = guard();
    let caps = capture_train(2);
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    echo_obs::reset_traces();

    pipeline.features_from_train(&caps).unwrap();
    let cold = echo_obs::take_spans();

    echo_obs::reset_traces();
    pipeline.features_from_train(&caps).unwrap();
    let warm = echo_obs::take_spans();

    let cold_shape: Vec<_> = cold.iter().map(span_shape).collect();
    let warm_shape: Vec<_> = warm.iter().map(span_shape).collect();
    assert_eq!(
        cold_shape, warm_shape,
        "cache state must not change the span tree"
    );
    // The distance stage carries the template-cache attribute: a miss
    // cold, a hit warm.
    let template_hit = |spans: &[SpanEvent]| {
        spans
            .iter()
            .find(|s| s.name == "stage.distance")
            .and_then(|s| {
                s.attrs
                    .iter()
                    .find_map(|(k, v)| (*k == "template_cache_hit").then(|| format!("{v:?}")))
            })
    };
    assert_eq!(template_hit(&cold).as_deref(), Some("Bool(false)"));
    assert_eq!(template_hit(&warm).as_deref(), Some("Bool(true)"));
}

#[test]
fn audit_records_identical_across_thread_counts() {
    let _g = guard();
    let clean = capture_train(3);
    let plan = FaultPlan::none().with_fault(0, ChannelFault::from_severity(FaultKind::Dead, 1.0));
    let faulted = plan.apply_train(&clean);

    // Enrol outside the comparison window so both runs see the same
    // authenticator and the probe mints trace serial 1.
    let enroll_feats = EchoImagePipeline::new(config(1))
        .features_from_train(&clean)
        .unwrap();
    let auth = Authenticator::enroll(&[(1, enroll_feats)], &Default::default()).unwrap();

    let run = |threads: usize| {
        clear_caches();
        echo_obs::reset();
        echo_obs::reset_traces();
        let pipeline = EchoImagePipeline::new(config(threads));
        let decision = auth.authenticate_train(&pipeline, &faulted).unwrap();
        (decision, echo_obs::take_audits(), echo_obs::take_spans())
    };
    let (serial_decision, serial_audits, serial_spans) = run(1);
    let (pooled_decision, pooled_audits, pooled_spans) = run(pool_threads());

    assert_eq!(serial_decision, pooled_decision);
    assert_eq!(
        serial_audits, pooled_audits,
        "audit records must not depend on the worker-thread count"
    );
    let serial_tree: Vec<_> = serial_spans.iter().map(span_identity).collect();
    let pooled_tree: Vec<_> = pooled_spans.iter().map(span_identity).collect();
    assert_eq!(serial_tree, pooled_tree);

    // The probe went through the degraded route: its audit must say so.
    assert_eq!(serial_audits.len(), 1);
    let audit = &serial_audits[0];
    assert_eq!(audit.trace, 1, "the probe mints trace serial 1");
    assert_eq!(audit.channels, 6);
    assert_eq!(audit.degraded_mask, 0b1, "dead mic 0 must be excised");
    assert_eq!(audit.beeps, 3);
}

#[test]
fn sampled_run_is_the_kept_subset_of_the_full_run() {
    let _g = guard();
    let caps = capture_train(2);

    let session = |keep_one_in: u64| {
        clear_caches();
        echo_obs::reset_traces();
        echo_obs::set_trace_sampling(keep_one_in);
        let pipeline = EchoImagePipeline::new(config(pool_threads()));
        for _ in 0..4 {
            pipeline.features_from_train(&caps).unwrap();
        }
        echo_obs::take_spans()
    };
    let full = session(1);
    let sampled = session(4);

    let traces = |spans: &[SpanEvent]| {
        let mut t: Vec<u64> = spans.iter().map(|s| s.trace).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    assert_eq!(traces(&full), vec![1, 2, 3, 4]);
    // 1-in-4 keeps exactly the traces whose serial satisfies the
    // deterministic predicate — here, only serial 1.
    assert_eq!(traces(&sampled), vec![1]);
    let full_kept: Vec<_> = full
        .iter()
        .filter(|s| s.trace == 1)
        .map(span_identity)
        .collect();
    let sampled_all: Vec<_> = sampled.iter().map(span_identity).collect();
    assert_eq!(
        full_kept, sampled_all,
        "a sampled trace must be identical to the same trace in a full run"
    );
}

#[test]
fn disabled_recorder_records_nothing_and_changes_nothing() {
    let _g = guard();
    let caps = capture_train(2);
    echo_obs::reset_traces();

    echo_obs::set_trace_enabled(false);
    echo_obs::set_enabled(false);
    let dark = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    assert_eq!(echo_obs::take_spans().len(), 0, "no spans when disabled");
    assert_eq!(echo_obs::take_audits().len(), 0, "no audits when disabled");

    echo_obs::set_trace_enabled(true);
    echo_obs::set_enabled(true);
    clear_caches();
    let lit = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    assert!(!echo_obs::take_spans().is_empty());
    assert_features_bit_identical(&dark, &lit);
}
