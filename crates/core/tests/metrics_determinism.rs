//! Determinism of the observability counters.
//!
//! Wall-clock timings are explicitly outside the determinism contract,
//! but every *counter* the pipeline emits counts logical events — trains
//! imaged, cache slots created, degraded activations — and must be
//! bit-for-bit identical across worker-thread counts and repeated runs.
//! These tests pin that: the same workload is run at `threads = 1` and
//! at the `ECHOIMAGE_THREADS` count under test, and the full counter
//! map (plus every histogram's observation *count*) must match exactly.
//! Cache hit/miss accounting is additionally pinned to exact values for
//! cold and warm cache states.
//!
//! The metrics registry and the process caches are global, so every
//! test serialises on one lock and starts from a cleared state.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use echo_sim::fault::{ChannelFault, FaultKind, FaultPlan};
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::config::ImagingConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{steering_cache, template_cache};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialises the test, clears every process cache, and zeroes the
/// metrics registry, so each test observes only its own events.
fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    echo_obs::set_enabled(true);
    echo_obs::reset();
    g
}

/// Worker threads for the path under test (`ECHOIMAGE_THREADS`,
/// default auto).
fn pool_threads() -> usize {
    echoimage_core::par::threads_from_env().expect("invalid ECHOIMAGE_THREADS")
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads,
        ..PipelineConfig::default()
    }
}

fn capture_train(beeps: usize) -> Vec<echo_sim::BeepCapture> {
    let scene = Scene::new(SceneConfig::laboratory_quiet(11));
    let body = BodyModel::from_seed(29);
    scene.capture_train(&body, &Placement::standing_front(0.7), 0, beeps, 0)
}

/// All counters plus per-histogram observation counts — everything the
/// determinism contract covers (timing values deliberately excluded).
/// Zero entries are dropped: a name registered by an earlier test but
/// untouched by this workload is equivalent to an unregistered one.
fn deterministic_metrics() -> BTreeMap<String, u64> {
    let snap = echo_obs::snapshot();
    let mut map: BTreeMap<String, u64> =
        snap.counters.into_iter().filter(|&(_, v)| v != 0).collect();
    for h in snap.histograms.into_iter().filter(|h| h.count != 0) {
        map.insert(format!("{}#count", h.name), h.count);
    }
    map
}

fn assert_features_bit_identical(a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.len(), y.len());
        for (p, q) in x.iter().zip(y.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "feature bits diverged");
        }
    }
}

#[test]
fn counters_identical_across_thread_counts() {
    let _g = guard();
    let caps = capture_train(3);
    // Capture-time counters (sim.beeps_captured) belong to neither run.
    echo_obs::reset();

    let serial = EchoImagePipeline::new(config(1))
        .features_from_train(&caps)
        .unwrap();
    let serial_metrics = deterministic_metrics();

    // Fresh cold start for the pooled run: same workload, same caches.
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    echo_obs::reset();

    let pooled = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    let pooled_metrics = deterministic_metrics();

    assert_features_bit_identical(&serial, &pooled);
    assert_eq!(
        serial_metrics, pooled_metrics,
        "counter values must not depend on the worker-thread count"
    );
    // Sanity: the workload actually recorded pipeline activity.
    assert_eq!(serial_metrics.get("pipeline.trains"), Some(&1));
    assert_eq!(serial_metrics.get("pipeline.beeps_imaged"), Some(&3));
    assert_eq!(serial_metrics.get("pipeline.images_constructed"), Some(&3));
    assert_eq!(serial_metrics.get("distance.estimates"), Some(&1));
    assert_eq!(serial_metrics.get("stage.imaging#count"), Some(&3));
}

#[test]
fn steering_cache_counts_exactly_cold_then_warm() {
    let _g = guard();
    let caps = capture_train(3);
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    echo_obs::reset();

    // Cold: one geometry for the whole train → 1 miss, beeps−1 hits.
    pipeline.features_from_train(&caps).unwrap();
    let cold = deterministic_metrics();
    assert_eq!(cold.get("steering_cache.miss"), Some(&1), "{cold:?}");
    assert_eq!(cold.get("steering_cache.hit"), Some(&2), "{cold:?}");

    // Warm: same geometry again → no new misses, beeps hits.
    echo_obs::reset();
    pipeline.features_from_train(&caps).unwrap();
    let warm = deterministic_metrics();
    assert_eq!(warm.get("steering_cache.miss"), None, "{warm:?}");
    assert_eq!(warm.get("steering_cache.hit"), Some(&3), "{warm:?}");
}

#[test]
fn template_and_plan_caches_count_exactly_cold_then_warm() {
    let _g = guard();
    let caps = capture_train(2);
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    echo_obs::reset();

    // Cold: one beep design → exactly one template miss; every FFT
    // length misses once.
    pipeline.estimate_distance(&caps).unwrap();
    let cold = deterministic_metrics();
    assert_eq!(cold.get("template_cache.miss"), Some(&1), "{cold:?}");
    let cold_plan_misses = *cold.get("fft_plan_cache.miss").unwrap_or(&0);
    assert!(cold_plan_misses >= 1, "{cold:?}");

    // Warm: the template is a pure hit and no new plan is built.
    echo_obs::reset();
    pipeline.estimate_distance(&caps).unwrap();
    let warm = deterministic_metrics();
    assert_eq!(warm.get("template_cache.miss"), None, "{warm:?}");
    assert_eq!(warm.get("template_cache.hit"), Some(&1), "{warm:?}");
    assert_eq!(warm.get("fft_plan_cache.miss"), None, "{warm:?}");
    // Cold and warm runs issue the same number of lookups per cache.
    // (Not true of the FFT-plan cache: building a template plan on a
    // cold miss issues nested `fft_plan` lookups the warm path skips.)
    let lookups = |m: &BTreeMap<String, u64>, cache: &str| {
        m.get(&format!("{cache}.hit")).unwrap_or(&0) + m.get(&format!("{cache}.miss")).unwrap_or(&0)
    };
    for cache in ["template_cache", "steering_cache"] {
        assert_eq!(
            lookups(&cold, cache),
            lookups(&warm, cache),
            "{cache} lookup count changed between cold and warm runs"
        );
    }
}

#[test]
fn degraded_path_counters_identical_across_thread_counts() {
    let _g = guard();
    let plan = FaultPlan::none().with_fault(0, ChannelFault::from_severity(FaultKind::Dead, 1.0));
    let caps = plan.apply_train(&capture_train(3));
    // Fault injection is capture preparation, not pipeline work — pin
    // its counters here, then exclude them from the run comparison.
    let prep = deterministic_metrics();
    assert_eq!(prep.get("sim.fault_trains"), Some(&1));
    assert_eq!(prep.get("sim.fault_channels"), Some(&3));
    echo_obs::reset();

    let (serial, health) = EchoImagePipeline::new(config(1))
        .features_from_train_degraded(&caps)
        .unwrap();
    assert!(!health.all_healthy(), "the dead channel must be flagged");
    let serial_metrics = deterministic_metrics();

    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    echo_obs::reset();

    let (pooled, _) = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train_degraded(&caps)
        .unwrap();
    let pooled_metrics = deterministic_metrics();

    assert_features_bit_identical(&serial, &pooled);
    assert_eq!(serial_metrics, pooled_metrics);
    assert_eq!(serial_metrics.get("degraded.activations"), Some(&1));
    assert_eq!(serial_metrics.get("health.trains_screened"), Some(&1));
    assert_eq!(serial_metrics.get("health.channels_excised"), Some(&1));
}

#[test]
fn disabled_registry_records_nothing_from_the_pipeline() {
    let _g = guard();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            echo_obs::set_enabled(true);
        }
    }
    let _restore = Restore;
    let caps = capture_train(2);
    echo_obs::reset();

    echo_obs::set_enabled(false);
    let disabled = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    let metrics = deterministic_metrics();
    assert!(
        metrics.is_empty(),
        "disabled registry must record nothing, got {metrics:?}"
    );

    // Disabling observability must not change the pipeline's output.
    echo_obs::set_enabled(true);
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    let enabled = EchoImagePipeline::new(config(pool_threads()))
        .features_from_train(&caps)
        .unwrap();
    assert_features_bit_identical(&disabled, &enabled);
}
