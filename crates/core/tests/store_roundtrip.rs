//! Template-store round-trip properties and corruption rejection.
//!
//! The exactness contract: enrolling a user, serializing their template
//! into a shard, and identifying through either shard reader (heap
//! decode or zero-copy mmap) must produce the *same bits* — margins and
//! therefore `AuthDecision`s — as the in-memory store the templates
//! came from. Quantization (f32 centroids) only ever touches prefilter
//! ranking, and both store flavours build the identical coarse index,
//! so even candidate sets agree exactly.
//!
//! The corruption half pins the failure mode of every byte of a shard:
//! a flipped bit is a checksum mismatch, a truncation is a typed
//! `Truncated` with the offending offset, and a doctored section is a
//! `Corrupt` naming the violated invariant — never a panic, never a
//! silently wrong decision.

use echo_ml::StandardScaler;
use echoimage_core::auth::AuthConfig;
use echoimage_core::store::{
    identify, IdentifyConfig, MemoryStore, ReaderMode, Shard, ShardStore, ShardWriter, StoreError,
    TemplateBuilder, TemplateStore, UserTemplate,
};
use echoimage_core::EchoImageError;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Deterministic per-user feature cloud: users sit on well-separated
/// centers, samples jitter tightly around them.
fn user_cloud(user: usize, dim: usize, n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(salt ^ (d as u64) << 17);
                    let jitter = ((h >> 16) & 0xFFFF) as f64 / 65536.0 - 0.5;
                    center(user, d) + jitter * 0.3
                })
                .collect()
        })
        .collect()
}

fn center(user: usize, d: usize) -> f64 {
    // Spread users along a deterministic lattice, 6 units apart.
    (((user * 7 + d * 3) % 13) as f64) * 6.0 + user as f64 * 0.5
}

struct Fixture {
    builder: TemplateBuilder,
    templates: Vec<Arc<UserTemplate>>,
    memory: MemoryStore,
}

fn build_fixture(n_users: usize, dim: usize, groups: usize, salt: u64) -> Fixture {
    let clouds: Vec<Vec<Vec<Vec<f64>>>> = (0..n_users)
        .map(|u| {
            (0..groups)
                .map(|g| user_cloud(u, dim, 10, salt.wrapping_add(g as u64 * 977)))
                .collect()
        })
        .collect();
    let all: Vec<Vec<f64>> = clouds.iter().flatten().flatten().cloned().collect();
    let builder = TemplateBuilder::new(StandardScaler::fit_global(&all), AuthConfig::default());
    let templates: Vec<Arc<UserTemplate>> = clouds
        .iter()
        .enumerate()
        .map(|(u, gs)| Arc::new(builder.build_user(u as u64 + 1, gs).unwrap()))
        .collect();
    let memory = MemoryStore::from_templates(builder.scaler(), templates.clone()).unwrap();
    Fixture {
        builder,
        templates,
        memory,
    }
}

fn shard_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("echoimage-store-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.echoshard", std::process::id()))
}

fn probes_for(fx: &Fixture, dim: usize, salt: u64) -> Vec<Vec<Vec<f64>>> {
    let mut probes = Vec::new();
    for u in 0..fx.templates.len() {
        // A 3-beep probe train from the user's own distribution.
        probes.push(user_cloud(u, dim, 3, salt.wrapping_add(0xABCD)));
    }
    // Spoofer probes far off every lattice point.
    probes.push(vec![vec![250.0; dim], vec![-250.0; dim], vec![333.0; dim]]);
    probes
}

fn assert_same_decisions(
    a: &dyn TemplateStore,
    b: &dyn TemplateStore,
    probes: &[Vec<Vec<f64>>],
    cfg: &IdentifyConfig,
) -> Result<(), TestCaseError> {
    for (i, probe) in probes.iter().enumerate() {
        let da = identify(a, probe, cfg).unwrap();
        let db = identify(b, probe, cfg).unwrap();
        prop_assert_eq!(da, db, "probe {} disagrees", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite 3, the core property: enroll → serialize → reopen
    /// (heap and mmap) → identify gives the same `AuthDecision` as the
    /// in-memory path, for both the prefiltered and exhaustive modes —
    /// and the margins themselves are bit-identical.
    fn roundtrip_preserves_decisions(
        n_users in 1usize..9,
        dim in 2usize..6,
        groups in 1usize..3,
        salt in 0u64..500,
    ) {
        let fx = build_fixture(n_users, dim, groups, salt);
        let path = shard_path(&format!("prop-{n_users}-{dim}-{groups}-{salt}"));
        let mut w = ShardWriter::new(fx.builder.scaler());
        for t in &fx.templates {
            w.push(t.clone()).unwrap();
        }
        w.write_to(&path).unwrap();

        let mut stores: Vec<ShardStore> = Vec::new();
        stores.push(ShardStore::from_shards(vec![
            Shard::open_with(&path, ReaderMode::Heap).unwrap(),
        ]).unwrap());
        if cfg!(unix) {
            stores.push(ShardStore::from_shards(vec![
                Shard::open_with(&path, ReaderMode::Mmap).unwrap(),
            ]).unwrap());
        }

        let probes = probes_for(&fx, dim, salt);
        for store in &stores {
            // Margins are bit-identical user by user, probe by probe.
            for probe in probes.iter().flatten() {
                let x = fx.builder.scaler().transform(probe);
                for id in fx.memory.user_ids() {
                    let want = fx.memory.gate_margin(id, &x).unwrap();
                    let got = store.gate_margin(id, &x).unwrap();
                    prop_assert_eq!(want.to_bits(), got.to_bits(),
                        "margin bits differ for user {}", id);
                }
            }
            // And so are whole identification decisions.
            for cfg in [
                IdentifyConfig::default(),
                IdentifyConfig { exhaustive: true, ..IdentifyConfig::default() },
                IdentifyConfig { top_k: 2, exhaustive: false },
            ] {
                assert_same_decisions(&fx.memory, store, &probes, &cfg)?;
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Candidate sets (ids and quantized distances) agree exactly
    /// between the in-memory index and both shard readers.
    fn roundtrip_preserves_candidates(
        n_users in 1usize..9,
        dim in 2usize..5,
        salt in 0u64..500,
        k in 1usize..6,
    ) {
        let fx = build_fixture(n_users, dim, 1, salt);
        let path = shard_path(&format!("cand-{n_users}-{dim}-{salt}-{k}"));
        let mut w = ShardWriter::new(fx.builder.scaler());
        for t in &fx.templates {
            w.push(t.clone()).unwrap();
        }
        w.write_to(&path).unwrap();
        let modes: &[ReaderMode] = if cfg!(unix) {
            &[ReaderMode::Heap, ReaderMode::Mmap]
        } else {
            &[ReaderMode::Heap]
        };
        for &mode in modes {
            let store = ShardStore::from_shards(vec![
                Shard::open_with(&path, mode).unwrap(),
            ]).unwrap();
            for probe in probes_for(&fx, dim, salt).iter().flatten() {
                let x = fx.builder.scaler().transform(probe);
                let xq: Vec<f32> = x.iter().map(|&v| v as f32).collect();
                let want = fx.memory.candidates(&xq, k);
                let got = store.candidates(&xq, k);
                prop_assert_eq!(&want, &got, "candidates differ in mode {:?}", mode);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

fn sealed(mut bytes: Vec<u8>) -> Vec<u8> {
    // Recompute the trailer so doctored sections get past the checksum
    // and exercise the structural validation.
    let body_len = bytes.len() - 8;
    let sum = echoimage_core::store::format::fnv1a64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

fn open_both(bytes: &[u8], tag: &str) -> Vec<Result<Shard, StoreError>> {
    let path = shard_path(tag);
    std::fs::write(&path, bytes).unwrap();
    let mut out = vec![Shard::open_with(&path, ReaderMode::Heap)];
    if cfg!(unix) {
        out.push(Shard::open_with(&path, ReaderMode::Mmap));
    }
    std::fs::remove_file(&path).unwrap();
    out
}

fn encoded_fixture() -> Vec<u8> {
    let fx = build_fixture(4, 3, 2, 42);
    let mut w = ShardWriter::new(fx.builder.scaler());
    for t in &fx.templates {
        w.push(t.clone()).unwrap();
    }
    w.encode().unwrap()
}

#[test]
fn bit_flip_anywhere_is_a_checksum_mismatch() {
    let bytes = encoded_fixture();
    // Flip one bit in a handful of positions spread over the file
    // (past the header fields that fail faster by design).
    for pos in [100, bytes.len() / 2, bytes.len() - 9] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x10;
        for (i, r) in open_both(&bad, &format!("flip-{pos}"))
            .into_iter()
            .enumerate()
        {
            assert!(
                matches!(r, Err(StoreError::ChecksumMismatch { .. })),
                "reader {i}, flip at {pos}: {r:?}"
            );
        }
    }
}

#[test]
fn truncation_is_typed_with_offsets() {
    let bytes = encoded_fixture();
    // Cut in the header: Truncated before anything else is attempted.
    for (i, r) in open_both(&bytes[..40], "trunc-header")
        .into_iter()
        .enumerate()
    {
        match r {
            Err(StoreError::Truncated { file_len: 40, .. }) => {}
            other => panic!("reader {i}: {other:?}"),
        }
    }
    // Cut mid-body: the header promises more bytes than exist.
    let cut = bytes.len() - 100;
    for (i, r) in open_both(&bytes[..cut], "trunc-body")
        .into_iter()
        .enumerate()
    {
        match r {
            Err(StoreError::Truncated {
                offset,
                needed: 100,
                file_len,
                ..
            }) => {
                assert_eq!(offset as usize, cut, "reader {i}");
                assert_eq!(file_len as usize, cut, "reader {i}");
            }
            other => panic!("reader {i}: {other:?}"),
        }
    }
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let bytes = encoded_fixture();
    let mut bad = bytes.clone();
    bad[..8].copy_from_slice(b"NOTSHARD");
    for r in open_both(&bad, "magic") {
        assert_eq!(r.unwrap_err(), StoreError::BadMagic { offset: 0 });
    }
    let mut bad = bytes;
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    for r in open_both(&bad, "version") {
        assert_eq!(
            r.unwrap_err(),
            StoreError::BadVersion {
                offset: 8,
                found: 99,
                supported: 1
            }
        );
    }
}

#[test]
fn doctored_record_table_is_corrupt_not_a_panic() {
    let bytes = encoded_fixture();
    let rec_tab_off = u64::from_le_bytes(bytes[72..80].try_into().unwrap()) as usize;
    // Point the first record past the second: non-monotone table.
    let mut bad = bytes.clone();
    let second = u64::from_le_bytes(bytes[rec_tab_off + 8..rec_tab_off + 16].try_into().unwrap());
    bad[rec_tab_off..rec_tab_off + 8].copy_from_slice(&(second + 8).to_le_bytes());
    for (i, r) in open_both(&sealed(bad), "rectab").into_iter().enumerate() {
        assert!(
            matches!(r, Err(StoreError::Corrupt { .. })),
            "reader {i}: {r:?}"
        );
    }
    // Inflate a support-vector count: the record no longer ends at its
    // table boundary (or runs off the file) — typed either way.
    let gates_off = u64::from_le_bytes(bytes[80..88].try_into().unwrap()) as usize;
    let mut bad = bytes.clone();
    let n_sv_pos = gates_off + 8; // first gate's n_sv, after the record header
    bad[n_sv_pos..n_sv_pos + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
    for (i, r) in open_both(&sealed(bad), "nsv").into_iter().enumerate() {
        assert!(
            matches!(
                r,
                Err(StoreError::Corrupt { .. }) | Err(StoreError::Truncated { .. })
            ),
            "reader {i}: {r:?}"
        );
    }
    // Unsorted user ids.
    let ids_off = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
    let mut bad = bytes.clone();
    bad[ids_off..ids_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    for (i, r) in open_both(&sealed(bad), "ids").into_iter().enumerate() {
        match r {
            Err(StoreError::Corrupt { offset, what }) => {
                assert_eq!(offset as usize, ids_off, "reader {i}");
                assert!(what.contains("ascending"), "reader {i}: {what}");
            }
            other => panic!("reader {i}: {other:?}"),
        }
    }
}

#[test]
fn atomic_write_leaves_no_tmp_file() {
    let fx = build_fixture(2, 2, 1, 7);
    let mut w = ShardWriter::new(fx.builder.scaler());
    for t in &fx.templates {
        w.push(t.clone()).unwrap();
    }
    let path = shard_path("atomic");
    w.write_to(&path).unwrap();
    assert!(path.exists());
    assert!(!path.with_extension("tmp").exists());
    // The written file round-trips.
    let shard = Shard::open(&path).unwrap();
    assert_eq!(shard.n_users(), 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn store_errors_surface_through_echoimage_error() {
    let e: EchoImageError = StoreError::BadMagic { offset: 0 }.into();
    assert!(matches!(e, EchoImageError::Store(_)));
    assert!(e.to_string().contains("bad magic"));
    assert!(std::error::Error::source(&e).is_some());
}

#[test]
fn empty_identify_paths_are_typed() {
    let fx = build_fixture(2, 2, 1, 3);
    let cfg = IdentifyConfig::default();
    assert!(matches!(
        identify(&fx.memory, &[], &cfg),
        Err(EchoImageError::NoCaptures)
    ));
    let empty = MemoryStore::new(fx.builder.scaler());
    assert!(matches!(
        identify(&empty, &[vec![0.0, 0.0]], &cfg),
        Err(EchoImageError::InvalidParameter(_))
    ));
    let bad_dim = vec![vec![1.0, 2.0, 3.0]];
    assert!(matches!(
        identify(&fx.memory, &bad_dim, &cfg),
        Err(EchoImageError::InvalidParameter(_))
    ));
}
