//! End-to-end behaviour of the channel-fault layer.
//!
//! Faults are injected by `echo-sim`'s [`FaultPlan`], screened out by
//! the core health module, and imaged around by the degraded pipeline.
//! These tests pin the contract: a fully-dead channel changes *nothing*
//! about the image the surviving subset produces, the degraded path is
//! bit-identical across thread counts, and a capture with too few
//! healthy microphones is rejected with a typed error — never a panic.
//!
//! The thread count under test comes from `ECHOIMAGE_THREADS` (default
//! `0`, auto), so CI can run the same suite pinned serial and with the
//! pool; the serial reference inside each test is always an explicit
//! `threads = 1` pipeline.

use echo_ml::GrayImage;
use echo_sim::{BodyModel, ChannelFault, FaultKind, FaultPlan, Placement, Scene, SceneConfig};
use echoimage_core::config::ImagingConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{AuthDecision, Authenticator, EchoImageError, RetryPolicy};

/// Worker threads for the pipeline under test (`ECHOIMAGE_THREADS`,
/// default auto).
fn pool_threads() -> usize {
    echoimage_core::par::threads_from_env().expect("invalid ECHOIMAGE_THREADS")
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads,
        ..PipelineConfig::default()
    }
}

fn assert_images_bit_identical(a: &[GrayImage], b: &[GrayImage]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        let (px, py) = (x.pixels(), y.pixels());
        assert_eq!(px.len(), py.len());
        for (p, q) in px.iter().zip(py.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "pixel bits diverged");
        }
    }
}

fn train(seed: u64, body_seed: u64, beeps: usize, salt: u64) -> Vec<echo_sim::BeepCapture> {
    let scene = Scene::new(SceneConfig::laboratory_quiet(seed));
    let body = BodyModel::from_seed(body_seed);
    scene.capture_train(&body, &Placement::standing_front(0.7), 0, beeps, salt)
}

#[test]
fn dead_channel_images_match_direct_subset_pipeline() {
    let caps = train(31, 61, 2, 0);
    let plan = FaultPlan::new(7).with_fault(2, ChannelFault::Dead);
    let faulted = plan.apply_train(&caps);

    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    let (degraded, est, health) = pipeline.images_from_train_degraded(&faulted).unwrap();
    assert!(!health.is_healthy(2), "dead mic 2 must be flagged");
    assert_eq!(health.healthy_indices(), vec![0, 1, 3, 4, 5]);

    // Reference: hand-build the 5-mic pipeline on hand-selected channels.
    let healthy = [0usize, 1, 3, 4, 5];
    let sub_caps: Vec<_> = faulted
        .iter()
        .map(|c| c.select_channels(&healthy))
        .collect();
    let sub_pipeline =
        EchoImagePipeline::with_array(config(pool_threads()), pipeline.array().subset(&healthy));
    let (reference, ref_est) = sub_pipeline.images_from_train(&sub_caps).unwrap();
    assert_eq!(
        est.horizontal_distance.to_bits(),
        ref_est.horizontal_distance.to_bits()
    );
    assert_images_bit_identical(&degraded, &reference);
}

#[test]
fn degraded_imaging_is_bit_identical_across_thread_counts() {
    let caps = train(37, 62, 3, 0);
    let plan = FaultPlan::new(11)
        .with_fault(0, ChannelFault::Dead)
        .with_fault(4, ChannelFault::from_severity(FaultKind::Clipping, 1.0));
    let faulted = plan.apply_train(&caps);

    let (serial, est_serial, _) = EchoImagePipeline::new(config(1))
        .images_from_train_degraded(&faulted)
        .unwrap();
    let (pooled, est_pooled, _) = EchoImagePipeline::new(config(pool_threads()))
        .images_from_train_degraded(&faulted)
        .unwrap();
    assert_eq!(
        est_serial.horizontal_distance.to_bits(),
        est_pooled.horizontal_distance.to_bits()
    );
    assert_images_bit_identical(&serial, &pooled);
}

#[test]
fn healthy_train_takes_the_bit_identical_normal_path() {
    let caps = train(41, 63, 2, 0);
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    let (normal, est_n) = pipeline.images_from_train(&caps).unwrap();
    let (degraded, est_d, health) = pipeline.images_from_train_degraded(&caps).unwrap();
    assert!(health.all_healthy());
    assert_eq!(
        est_n.horizontal_distance.to_bits(),
        est_d.horizontal_distance.to_bits()
    );
    assert_images_bit_identical(&normal, &degraded);
}

#[test]
fn every_fault_kind_yields_a_decision_or_a_typed_reject() {
    // Enrol on a clean train once, then probe with each fault kind at
    // full severity on two microphones. The contract is graceful
    // degradation: every probe either authenticates (Ok) or is rejected
    // with the typed DegradedCapture error — no panics, no other errors.
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    let enroll_feats = pipeline.features_from_train(&train(43, 64, 6, 0)).unwrap();
    let auth = Authenticator::enroll(&[(1, enroll_feats)], &Default::default()).unwrap();

    for (i, &kind) in FaultKind::ALL.iter().enumerate() {
        let caps = train(43, 64, 3, 1_000 + i as u64);
        let plan = FaultPlan::uniform(kind, 1.0, &[1, 4], 19 + i as u64);
        let faulted = plan.apply_train(&caps);
        match auth.authenticate_train(&pipeline, &faulted) {
            Ok(_) => {}
            Err(EchoImageError::DegradedCapture {
                healthy, required, ..
            }) => {
                assert!(healthy < required, "{kind:?}: inconsistent reject");
            }
            Err(e) => panic!("{kind:?}: unexpected error {e}"),
        }
    }
}

#[test]
fn two_dead_mics_still_enrol_and_authenticate_the_right_user() {
    // The acceptance bar: any 2 of 6 microphones dead, the system still
    // enrols and authenticates via the mic-subset mask. A hardware
    // fault is persistent — enrolment sees the same dead microphones as
    // authentication, and both flow through the same health screen.
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    let plan = FaultPlan::uniform(FaultKind::Dead, 1.0, &[1, 4], 23);

    let scene = Scene::new(SceneConfig::laboratory_quiet(47));
    let body = BodyModel::from_seed(65);
    let visits: Vec<_> = (0..3u32)
        .map(|v| {
            plan.apply_train(&scene.capture_train(
                &body,
                &Placement::standing_front(0.7),
                v,
                3,
                v as u64 * 500,
            ))
        })
        .collect();
    let (enroll_feats, health) = echoimage_core::enrollment::enrollment_features_degraded(
        &pipeline,
        &visits,
        &echoimage_core::enrollment::EnrollmentConfig::default(),
    )
    .unwrap();
    assert_eq!(health.healthy_indices(), vec![0, 2, 3, 5]);
    let auth = Authenticator::enroll(&[(1, enroll_feats)], &Default::default()).unwrap();

    let probe = plan.apply_train(&train(47, 65, 4, 5_000));
    let decision = auth.authenticate_train(&pipeline, &probe).unwrap();
    assert_eq!(decision, AuthDecision::Accepted { user_id: 1 });

    // A different body probing through the same degraded hardware must
    // still be gated out — degradation shrinks the array, not security.
    let scene = Scene::new(SceneConfig::laboratory_quiet(47));
    let impostor = BodyModel::from_seed(90);
    let imp_caps =
        plan.apply_train(&scene.capture_train(&impostor, &Placement::standing_front(0.7), 0, 4, 0));
    let imp_decision = auth.authenticate_train(&pipeline, &imp_caps).unwrap();
    assert_eq!(imp_decision, AuthDecision::Rejected);
}

#[test]
fn too_many_dead_mics_reject_with_counts() {
    let caps = train(53, 66, 2, 0);
    let plan = FaultPlan::uniform(FaultKind::Dead, 1.0, &[0, 2, 3, 5], 29);
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    let err = pipeline
        .images_from_train_degraded(&plan.apply_train(&caps))
        .unwrap_err();
    assert_eq!(
        err,
        EchoImageError::DegradedCapture {
            healthy: 2,
            required: 3,
            mask: 0b10_1101
        }
    );
}

#[test]
fn retry_recovers_when_a_later_train_is_clean() {
    // Enrol with the production recipe (plane diversity + augmentation)
    // so a fresh clean train authenticates; a bare single-plane cloud
    // is too tight for majority voting on unseen probes.
    let pipeline = EchoImagePipeline::new(config(pool_threads()));
    let scene = Scene::new(SceneConfig::laboratory_quiet(59));
    let body = BodyModel::from_seed(67);
    let visits: Vec<_> = (0..3u32)
        .map(|v| scene.capture_train(&body, &Placement::standing_front(0.7), v, 3, v as u64 * 500))
        .collect();
    let enroll_feats = echoimage_core::enrollment::enrollment_features(
        &pipeline,
        &visits,
        &echoimage_core::enrollment::EnrollmentConfig::default(),
    )
    .unwrap();
    let auth = Authenticator::enroll(&[(1, enroll_feats)], &Default::default()).unwrap();

    let dead4 = FaultPlan::uniform(FaultKind::Dead, 1.0, &[0, 1, 2, 3], 31);
    let mut attempts_seen = 0usize;
    let decision = auth
        .authenticate_train_with_retry(&pipeline, &RetryPolicy::default(), |attempt| {
            attempts_seen += 1;
            let caps = train(59, 67, 3, 9_000 + attempt as u64);
            if attempt == 0 {
                dead4.apply_train(&caps)
            } else {
                caps
            }
        })
        .unwrap();
    assert_eq!(attempts_seen, 2, "first attempt must have been retried");
    assert_eq!(decision, AuthDecision::Accepted { user_id: 1 });

    // Permanently degraded hardware exhausts the policy and surfaces
    // the last typed error.
    let err = auth
        .authenticate_train_with_retry(&pipeline, &RetryPolicy { max_attempts: 3 }, |attempt| {
            dead4.apply_train(&train(59, 67, 2, 12_000 + attempt as u64))
        })
        .unwrap_err();
    assert!(matches!(err, EchoImageError::DegradedCapture { .. }));
}
