//! SIMD dispatch contract: the gauge reports the forced path, and the
//! full pipeline's numeric/audit/trace output is bit-identical across
//! dispatch modes.
//!
//! The second half works through digest files: the SIMD path is chosen
//! once per process (like `ECHOIMAGE_THREADS`), so scalar-vs-AVX2
//! comparison needs two processes. [`parity_digest_is_recorded`] runs a
//! canonical enrol + authenticate + ranging workload and writes an
//! FNV-1a digest of everything the determinism contract covers —
//! feature bits, distance-estimate bits, the auth decision, audit
//! records and logical span identities (never wall-clock timings) — to
//! `target/simd-parity/<mode>.digest`. `cargo xtask ci` (and the CI
//! workflow) runs this suite under `ECHOIMAGE_SIMD=scalar` and
//! `ECHOIMAGE_SIMD=auto` and asserts the digests match, which on AVX2
//! hardware is the scalar-vs-SIMD bit-identity proof.

use std::io::Write as _;
use std::sync::{Mutex, MutexGuard};

use echo_dsp::simd;
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::auth::Authenticator;
use echoimage_core::config::ImagingConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{steering_cache, template_cache};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialises the test and restores recorder defaults on exit (the
/// registry, recorder and caches are process-global).
struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Armed {
    fn drop(&mut self) {
        echo_obs::set_trace_enabled(false);
        echo_obs::set_trace_sampling(1);
        echo_obs::set_enabled(true);
        echo_obs::reset_traces();
    }
}

fn guard() -> Armed {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    echo_obs::set_enabled(true);
    echo_obs::reset();
    echo_obs::set_trace_enabled(true);
    echo_obs::set_trace_sampling(1);
    echo_obs::reset_traces();
    Armed(g)
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads,
        ..PipelineConfig::default()
    }
}

fn capture_train(beeps: usize, seed: u64) -> Vec<echo_sim::BeepCapture> {
    let scene = Scene::new(SceneConfig::laboratory_quiet(11));
    let body = BodyModel::from_seed(29);
    scene.capture_train(&body, &Placement::standing_front(0.7), 0, beeps, seed)
}

/// The dispatch mode this process was forced into, derived from the
/// environment exactly the way `echo_dsp::simd` derives it.
fn expected_path() -> simd::SimdPath {
    let forced_scalar = std::env::var(simd::SIMD_ENV)
        .map(|v| v.trim().eq_ignore_ascii_case("scalar"))
        .unwrap_or(false);
    if !forced_scalar && simd::avx2_supported() {
        simd::SimdPath::Avx2
    } else {
        simd::SimdPath::Scalar
    }
}

#[test]
fn dispatch_gauge_reports_forced_path() {
    let _g = guard();
    // Run real distance work so the gauge is recorded the way
    // production records it (from the hot entry point, after reset).
    let caps = capture_train(1, 5);
    let pipeline = EchoImagePipeline::new(config(1));
    pipeline
        .estimate_distance(&caps)
        .expect("canonical scene must range");

    assert_eq!(simd::active(), expected_path(), "env knob must win");
    let snap = echo_obs::snapshot();
    let gauge = snap
        .gauges
        .iter()
        .find(|(name, _)| name == simd::DISPATCH_GAUGE)
        .map(|(_, v)| *v)
        .expect("distance estimation records the dispatch gauge");
    assert_eq!(
        gauge,
        expected_path().gauge_value(),
        "gauge must report the forced path ({})",
        expected_path().name()
    );
}

#[test]
fn forcing_scalar_is_always_honoured() {
    // Whatever this process's env says, the explicit-path kernels must
    // accept a scalar forcing — the mandatory fallback of the tentpole.
    let xs = [3.0, -1.0, 7.5, 2.0, 7.5, -9.0];
    assert_eq!(simd::max_f64_with(simd::SimdPath::Scalar, &xs), 7.5);
}

/// FNV-1a over the canonical run transcript.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything the cross-mode bit-identity contract covers, rendered
/// deterministically. Wall-clock span timings are excluded by
/// construction (only logical span identity is folded in).
fn canonical_transcript() -> String {
    let mut out = String::new();

    // Feature extraction + enrolment + authentication + audit.
    let enroll_train = capture_train(3, 0);
    let probe_train = capture_train(3, 7);
    let pipeline = EchoImagePipeline::new(config(1));
    let enroll_feats = pipeline
        .features_from_train(&enroll_train)
        .expect("enrol features");
    for f in enroll_feats.iter().flatten() {
        out.push_str(&format!("{:016x},", f.to_bits()));
    }
    let auth = Authenticator::enroll(&[(1, enroll_feats)], &Default::default()).expect("enroll");
    let decision = auth
        .authenticate_train(&pipeline, &probe_train)
        .expect("authenticate");
    out.push_str(&format!("decision={decision:?};"));

    // Distance estimation (the SIMD hot path end to end).
    let est = pipeline
        .estimate_distance(&probe_train)
        .expect("canonical scene must range");
    out.push_str(&format!(
        "slant={:016x};horizontal={:016x};direct={};echo={};",
        est.slant_distance.to_bits(),
        est.horizontal_distance.to_bits(),
        est.direct_peak,
        est.echo_peak,
    ));

    // Audit records describe decisions, not schedules: fold verbatim.
    for audit in echo_obs::take_audits() {
        out.push_str(&format!("audit={audit:?};"));
    }

    // Span identity without timings (same fields the trace determinism
    // suite pins across thread counts).
    for ev in echo_obs::take_spans() {
        out.push_str(&format!(
            "span=({},{},{},{},{},{},{:?});",
            ev.trace, ev.seq, ev.span, ev.parent, ev.name, ev.lidx, ev.attrs
        ));
    }
    out
}

#[test]
fn parity_digest_is_recorded() {
    let _g = guard();
    let transcript = canonical_transcript();
    let digest = fnv1a(transcript.as_bytes());

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/simd-parity");
    std::fs::create_dir_all(&dir).expect("create parity dir");
    let mode = simd::active().name();
    let path = dir.join(format!("{mode}.digest"));
    let mut file = std::fs::File::create(&path).expect("create digest file");
    writeln!(file, "{digest:016x}").expect("write digest");

    // Self-check: the canonical workload must be reproducible within
    // one process, otherwise the cross-process comparison means nothing.
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    echo_obs::reset();
    echo_obs::reset_traces();
    let again = fnv1a(canonical_transcript().as_bytes());
    assert_eq!(digest, again, "canonical transcript must be reproducible");
}
