//! Bit-level determinism of the parallel imaging engine.
//!
//! The parallel sweep, the steering-field cache and the precomputed
//! MVDR designer are all claimed to be *bit-identical* to the serial
//! reference path. These tests hold that claim to `f64::to_bits`
//! equality — not approximate closeness — because a biometric template
//! must not depend on the machine's core count or on cache state.

use echo_ml::GrayImage;
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::config::ImagingConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::steering_cache;

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads,
        ..PipelineConfig::default()
    }
}

fn assert_images_bit_identical(a: &[GrayImage], b: &[GrayImage]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        let (px, py) = (x.pixels(), y.pixels());
        assert_eq!(px.len(), py.len());
        for (p, q) in px.iter().zip(py.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "pixel bits diverged");
        }
    }
}

#[test]
fn four_threads_match_serial_reference() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(11));
    let body = BodyModel::from_seed(21);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 3, 0);

    let (serial, est_serial) = EchoImagePipeline::new(config(1))
        .images_from_train(&caps)
        .unwrap();
    for threads in [2, 4] {
        let (parallel, est_parallel) = EchoImagePipeline::new(config(threads))
            .images_from_train(&caps)
            .unwrap();
        assert_eq!(
            est_serial.horizontal_distance.to_bits(),
            est_parallel.horizontal_distance.to_bits()
        );
        assert_images_bit_identical(&serial, &parallel);
    }
}

#[test]
fn multi_plane_fanout_matches_serial_reference() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(13));
    let body = BodyModel::from_seed(22);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 2, 0);
    let offsets = [-0.03, 0.03];

    let (serial, _) = EchoImagePipeline::new(config(1))
        .images_from_train_multi_plane(&caps, &offsets)
        .unwrap();
    let (parallel, _) = EchoImagePipeline::new(config(4))
        .images_from_train_multi_plane(&caps, &offsets)
        .unwrap();
    // capture-major order: (beeps) × (estimate + two offsets).
    assert_eq!(serial.len(), 2 * 3);
    assert_images_bit_identical(&serial, &parallel);
}

#[test]
fn warm_steering_cache_matches_cold_computation() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(17));
    let body = BodyModel::from_seed(23);
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let pipeline = EchoImagePipeline::new(config(1));

    steering_cache::clear_cache();
    let cold = pipeline.acoustic_image(&cap, 0.7).unwrap();
    assert!(
        steering_cache::cache_len() > 0,
        "cold run must populate the cache"
    );
    let warm = pipeline.acoustic_image(&cap, 0.7).unwrap();
    assert_images_bit_identical(std::slice::from_ref(&cold), std::slice::from_ref(&warm));
}

#[test]
fn auto_thread_count_matches_serial_reference() {
    // threads = 0 resolves to available parallelism — whatever that is
    // on the machine running this test, the image must not change.
    let scene = Scene::new(SceneConfig::laboratory_quiet(19));
    let body = BodyModel::from_seed(24);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 2, 0);

    let (serial, _) = EchoImagePipeline::new(config(1))
        .images_from_train(&caps)
        .unwrap();
    let (auto, _) = EchoImagePipeline::new(config(0))
        .images_from_train(&caps)
        .unwrap();
    assert_images_bit_identical(&serial, &auto);
}
