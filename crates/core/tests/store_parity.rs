//! Prefilter/oracle decision parity, snapshot reload semantics, and
//! store metric determinism.
//!
//! The coarse centroid prefilter is an *optimisation*, not a model
//! change: on a population of well-separated speakers, pruning to
//! top-K before the SVDD vote must yield decisions identical to the
//! exhaustive scan that scores every enrolled user. This suite pins
//! that on a few-hundred-user store (the 10k/1M-scale versions run in
//! `echo-bench`'s `store_bench`), plus the append-only reload story:
//! a snapshot held across a publish keeps answering from its epoch,
//! and a re-enrolled user's newest shard wins.

use echo_ml::StandardScaler;
use echoimage_core::auth::AuthConfig;
use echoimage_core::store::{
    identify, IdentifyConfig, MemoryStore, ReaderMode, Shard, ShardStore, ShardWriter, StoreHandle,
    TemplateBuilder, TemplateStore, UserTemplate,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    echo_obs::set_enabled(true);
    echo_obs::reset();
    g
}

const DIM: usize = 4;

/// Deterministic hash-lattice cloud for `user`, mimicking the enrolment
/// feature distribution: tight per-user clusters on separated centers.
fn cloud(user: u64, n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..DIM)
                .map(|d| {
                    let h = (user ^ salt)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((i * DIM + d) as u64)
                        .wrapping_mul(0xD1B5_4A32_D192_ED03);
                    let jitter = ((h >> 24) & 0xFFFF) as f64 / 65536.0 - 0.5;
                    user_center(user, d) + jitter * 0.25
                })
                .collect()
        })
        .collect()
}

fn user_center(user: u64, d: usize) -> f64 {
    // Base-32 digit decomposition of the user id: injective for ids
    // below 2^20, so no two users share a center and distinct centers
    // are at least 4.0 apart in some dimension — well-separated
    // speakers, the regime the prefilter is designed for.
    ((user >> (5 * d as u64)) & 0x1F) as f64 * 4.0
}

struct Population {
    builder: TemplateBuilder,
    templates: Vec<Arc<UserTemplate>>,
}

fn enroll(n_users: u64, salt: u64) -> Population {
    // Fit the scaler once on a sample of users, then freeze it — the
    // store contract for incremental enrolment.
    let sample: Vec<Vec<f64>> = (1..=n_users.min(32))
        .flat_map(|u| cloud(u, 8, salt))
        .collect();
    let builder = TemplateBuilder::new(StandardScaler::fit_global(&sample), AuthConfig::default());
    let templates = (1..=n_users)
        .map(|u| Arc::new(builder.build_user(u, &[cloud(u, 40, salt)]).unwrap()))
        .collect();
    Population { builder, templates }
}

/// A probe sitting exactly on the user's cluster center — always well
/// inside a gate trained on that cluster.
fn center_probe(user_key: u64) -> Vec<f64> {
    (0..DIM).map(|d| user_center(user_key, d)).collect()
}

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("echoimage-store-parity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.echoshard",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn write_shard(builder: &TemplateBuilder, templates: &[Arc<UserTemplate>], tag: &str) -> PathBuf {
    let mut w = ShardWriter::new(builder.scaler());
    for t in templates {
        w.push(t.clone()).unwrap();
    }
    let path = temp_path(tag);
    w.write_to(&path).unwrap();
    path
}

#[test]
fn prefilter_decisions_match_exhaustive_oracle() {
    let _g = guard();
    let n_users = 300u64;
    let pop = enroll(n_users, 17);
    let store = MemoryStore::from_templates(pop.builder.scaler(), pop.templates.clone()).unwrap();

    let prefiltered = IdentifyConfig::default();
    let oracle = IdentifyConfig {
        exhaustive: true,
        ..IdentifyConfig::default()
    };
    let mut accepted = 0usize;
    let mut probes = 0usize;
    // Every 7th user probes with held-out samples from their own
    // distribution; spoofers probe from nowhere.
    for u in (1..=n_users).step_by(7) {
        let probe = cloud(u, 3, 0xFEED);
        let fast = identify(&store, &probe, &prefiltered).unwrap();
        let slow = identify(&store, &probe, &oracle).unwrap();
        assert_eq!(fast, slow, "user {u}: prefilter diverged from oracle");
        probes += 1;
        if fast.is_accepted() {
            accepted += 1;
            assert_eq!(fast.user_id(), Some(u as usize), "user {u} misidentified");
        }
    }
    // The parity property is the contract; but an all-reject store
    // would make it vacuous, so require the gates actually work.
    assert!(
        accepted * 10 >= probes * 8,
        "only {accepted}/{probes} legitimate probes accepted"
    );
    for s in 0..10u64 {
        let probe: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..DIM)
                    .map(|d| 500.0 + (s * 3 + i + d as u64) as f64)
                    .collect()
            })
            .collect();
        let fast = identify(&store, &probe, &prefiltered).unwrap();
        let slow = identify(&store, &probe, &oracle).unwrap();
        assert_eq!(fast, slow, "spoofer {s}: prefilter diverged from oracle");
        assert!(!fast.is_accepted(), "spoofer {s} accepted");
    }
}

#[test]
fn shard_store_parity_with_memory_store() {
    let _g = guard();
    let pop = enroll(120, 23);
    let memory = MemoryStore::from_templates(pop.builder.scaler(), pop.templates.clone()).unwrap();
    let path = write_shard(&pop.builder, &pop.templates, "parity");
    let shards = ShardStore::from_shards(vec![Shard::open(&path).unwrap()]).unwrap();
    let cfg = IdentifyConfig::default();
    for u in (1..=120u64).step_by(11) {
        let probe = cloud(u, 3, 0xBEEF);
        assert_eq!(
            identify(&memory, &probe, &cfg).unwrap(),
            identify(&shards, &probe, &cfg).unwrap(),
            "user {u}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_reload_is_non_blocking_and_newest_shard_wins() {
    let _g = guard();
    let pop = enroll(40, 31);
    let base = write_shard(&pop.builder, &pop.templates, "base");
    let snapshot: Arc<dyn TemplateStore> =
        Arc::new(ShardStore::from_shards(vec![Shard::open(&base).unwrap()]).unwrap());
    let handle = StoreHandle::new(snapshot);
    let cfg = IdentifyConfig::default();

    // A reader holds the pre-reload snapshot.
    let held = handle.load();
    assert_eq!(held.user_count(), 40);

    // Re-enrolment: user 41 appears, user 7 re-enrolls *on a different
    // body of data* (their cluster moved). Appends a second shard and
    // publishes; nothing about the first shard is rewritten.
    let moved_7 = Arc::new(
        pop.builder
            .build_user(7, &[cloud(1_000_007, 40, 31)])
            .unwrap(),
    );
    let new_41 = Arc::new(pop.builder.build_user(41, &[cloud(41, 40, 31)]).unwrap());
    let delta = write_shard(&pop.builder, &[moved_7.clone(), new_41.clone()], "delta");
    let reloaded: Arc<dyn TemplateStore> = Arc::new(
        ShardStore::from_shards(vec![
            Shard::open(&base).unwrap(),
            Shard::open(&delta).unwrap(),
        ])
        .unwrap(),
    );
    handle.publish(reloaded);

    // The held snapshot still answers from its epoch: user 41 unknown,
    // user 7 still their *old* template.
    assert_eq!(held.user_count(), 40);
    assert!(held.gate_margin(41, &[0.0; DIM]).is_none());
    let x_old = pop.builder.scaler().transform(&center_probe(7));
    assert!(
        held.gate_margin(7, &x_old).unwrap() >= 0.0,
        "old snapshot lost user 7's old template"
    );

    // A fresh load sees the union, newest shard winning for user 7.
    let fresh = handle.load();
    assert_eq!(fresh.user_count(), 41);
    assert!(fresh.gate_margin(41, &[0.0; DIM]).is_some());
    let x_new = pop.builder.scaler().transform(&center_probe(1_000_007));
    assert!(
        fresh.gate_margin(7, &x_new).unwrap() >= 0.0,
        "reloaded store does not serve user 7's newest template"
    );
    assert!(
        held.gate_margin(7, &x_new).unwrap() < 0.0,
        "old template should reject the new enrolment's cluster"
    );
    // Identification still works end to end on the fresh snapshot.
    let d = identify(fresh.as_ref(), &vec![center_probe(41); 3], &cfg).unwrap();
    assert_eq!(d.user_id(), Some(41));

    std::fs::remove_file(&base).unwrap();
    std::fs::remove_file(&delta).unwrap();
}

#[test]
fn shards_with_mismatched_scalers_are_rejected() {
    let _g = guard();
    let a = enroll(3, 1);
    let b = enroll(3, 999); // different salt → different fitted scaler
    let pa = write_shard(&a.builder, &a.templates, "scaler-a");
    let pb = write_shard(&b.builder, &b.templates, "scaler-b");
    let err = ShardStore::from_shards(vec![Shard::open(&pa).unwrap(), Shard::open(&pb).unwrap()])
        .unwrap_err();
    assert!(err.to_string().contains("scaler"), "{err}");
    std::fs::remove_file(&pa).unwrap();
    std::fs::remove_file(&pb).unwrap();
}

/// Satellite 1: the `store.*` metrics are logical-event counts, so two
/// identical runs — and any `ECHOIMAGE_THREADS` setting, since
/// identification runs on the coordinating thread — must produce the
/// same values; and both readers must count identically.
#[test]
fn store_metrics_are_deterministic_and_reader_independent() {
    let pop = enroll(60, 47);
    let path = write_shard(&pop.builder, &pop.templates, "metrics");
    let cfg = IdentifyConfig::default();

    let run = |mode: ReaderMode| -> BTreeMap<String, u64> {
        let _g = guard();
        let store = ShardStore::from_shards(vec![Shard::open_with(&path, mode).unwrap()]).unwrap();
        for u in (1..=60u64).step_by(5) {
            let _ = identify(&store, &cloud(u, 3, 0xCAFE), &cfg).unwrap();
        }
        // One spoofer that misses everywhere.
        let _ = identify(&store, &[vec![1e4; DIM], vec![-1e4; DIM]], &cfg).unwrap();
        let snap = echo_obs::snapshot();
        let mut map: BTreeMap<String, u64> = snap
            .counters
            .into_iter()
            .filter(|(name, v)| name.starts_with("store.") && *v != 0)
            .collect();
        for h in snap.histograms {
            if h.name.starts_with("store.") && h.count != 0 {
                map.insert(format!("{}#count", h.name), h.count);
            }
        }
        for (name, v) in snap.gauges {
            if name.starts_with("store.") {
                map.insert(name, v as u64);
            }
        }
        map
    };

    let first = run(ReaderMode::Heap);
    let again = run(ReaderMode::Heap);
    assert_eq!(first, again, "store metrics differ between identical runs");
    if cfg!(unix) {
        let mapped = run(ReaderMode::Mmap);
        assert_eq!(first, mapped, "store metrics differ between readers");
    }
    // The workload shape is pinned: 12 legit trains x 3 beeps + 1
    // spoofer train x 2 beeps = 38 lookups; hits/misses partition them.
    assert_eq!(first["store.lookup#count"], 38);
    assert_eq!(
        first.get("store.prefilter.hit").copied().unwrap_or(0)
            + first.get("store.prefilter.miss").copied().unwrap_or(0),
        38
    );
    assert_eq!(first["store.identify_attempts"], 13);
    std::fs::remove_file(&path).unwrap();
}
