//! Audit-pass suite for the attack model (DESIGN.md §14).
//!
//! Every spoofed authentication attempt must produce exactly one
//! [`AuthAudit`] whose `reject_kind` names *why* the attempt failed —
//! [`RejectKind::ReplaySignature`] with the measured image spread for a
//! loudspeaker replay caught by the spatial screen, a classifier kind
//! ([`RejectKind::SpooferGate`] / [`RejectKind::NoMajority`]) for a
//! twin impostor — and the full record, metadata included, must be
//! bit-identical across worker-thread counts (`ECHOIMAGE_THREADS=1`
//! versus the pool). These tests ride the same determinism contract as
//! `trace_determinism.rs`: audits are recorded from the coordinating
//! thread, never inside a parallel region.
//!
//! The recorder and the process caches are global, so every test
//! serialises on one lock and starts from a cleared state.
//!
//! [`AuthAudit`]: echo_obs::AuthAudit
//! [`RejectKind`]: echo_obs::RejectKind

use std::sync::{Mutex, MutexGuard};

use echo_obs::{AuthAudit, AuthVerdict, RejectKind};
use echo_sim::{BodyModel, Placement, Scene, SceneConfig, SpoofPlan};
use echoimage_core::auth::{AuthDecision, Authenticator};
use echoimage_core::config::SpatialCheckConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{steering_cache, template_cache};

static LOCK: Mutex<()> = Mutex::new(());

struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Armed {
    fn drop(&mut self) {
        echo_obs::set_enabled(true);
        echo_obs::reset();
    }
}

fn guard() -> Armed {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_caches();
    echo_obs::set_enabled(true);
    echo_obs::reset();
    Armed(g)
}

fn clear_caches() {
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
}

/// Worker threads for the pooled run (`ECHOIMAGE_THREADS`, default
/// auto) — the suite runs in the CI determinism matrix under both 1
/// and 0.
fn pool_threads() -> usize {
    echoimage_core::par::threads_from_env().expect("invalid ECHOIMAGE_THREADS")
}

/// The validated free-field conditions of the spatial screen (see
/// `spatial.rs`): quiet laboratory, victim 0.7 m in front, default
/// imaging grid, default (free-field) spread ceiling.
fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        spatial: SpatialCheckConfig {
            enabled: true,
            ..SpatialCheckConfig::default()
        },
        ..PipelineConfig::default()
    }
    .with_threads(threads)
}

fn scene() -> Scene {
    Scene::new(SceneConfig::laboratory_quiet(3))
}

const VICTIM_SEED: u64 = 11;
const VICTIM_ID: u64 = 1;

/// Enrolls the victim outside the comparison window, so both thread
/// counts authenticate against the same model. Enrolment spans three
/// visits so the enrolled cloud covers the session-to-session noise a
/// later genuine probe will carry (the evaluation protocol does the
/// same with its enrolment batches).
fn enrolled(scene: &Scene) -> Authenticator {
    let victim = BodyModel::from_seed(VICTIM_SEED);
    let pipe = EchoImagePipeline::new(config(1));
    let mut feats = Vec::new();
    for visit in 0..3u32 {
        let caps = scene.capture_train(
            &victim,
            &Placement::standing_front(0.7),
            visit,
            6,
            u64::from(visit) * 1_000,
        );
        feats.extend(pipe.features_from_train(&caps).unwrap());
    }
    Authenticator::enroll(&[(VICTIM_ID as usize, feats)], &Default::default()).unwrap()
}

/// Runs one claimed attempt at `threads` workers from a cold start and
/// returns the decision with its single audit record.
fn attempt(
    auth: &Authenticator,
    captures: &[echo_sim::BeepCapture],
    threads: usize,
) -> (AuthDecision, AuthAudit) {
    clear_caches();
    echo_obs::reset();
    echo_obs::reset_audits();
    let pipeline = EchoImagePipeline::new(config(threads));
    let decision = auth
        .authenticate_train_claimed(&pipeline, captures, VICTIM_ID)
        .unwrap();
    let audits = echo_obs::take_audits();
    assert_eq!(audits.len(), 1, "one attempt must mint exactly one audit");
    (decision, audits.into_iter().next().unwrap())
}

#[test]
fn replay_reject_is_typed_and_thread_invariant() {
    let _g = guard();
    let s = scene();
    let auth = enrolled(&s);
    let p = Placement::standing_front(0.7);

    // The attacker records the victim, then replays from where the
    // victim stood.
    let victim = BodyModel::from_seed(VICTIM_SEED);
    let recorded = s.capture_train(&victim, &p, 1, 3, 50);
    let plan = SpoofPlan::replay_of(&recorded, 0.7, 77);
    let attack = plan.capture_train(&s, &p, 2, 3, 100);

    let (serial_decision, serial_audit) = attempt(&auth, &attack, 1);
    let (pooled_decision, pooled_audit) = attempt(&auth, &attack, pool_threads());

    assert_eq!(serial_decision, pooled_decision);
    assert_eq!(
        serial_audit, pooled_audit,
        "spoof audits must not depend on the worker-thread count"
    );

    // The screen, not the classifier, must own this reject: the typed
    // kind plus the measured spread above the deployed ceiling.
    assert_eq!(serial_decision, AuthDecision::Rejected);
    assert_eq!(serial_audit.verdict, AuthVerdict::Rejected);
    assert_eq!(serial_audit.reject_kind, RejectKind::ReplaySignature);
    assert_eq!(serial_audit.claimed_user, Some(VICTIM_ID));
    assert!(!serial_audit.reject_reason.is_empty());
    let ceiling = SpatialCheckConfig::default().max_coherence;
    let spread = serial_audit
        .spatial_coherence
        .expect("a replay-signature reject must carry the measured spread");
    assert!(
        spread > ceiling,
        "recorded spread {spread} must exceed the ceiling {ceiling}"
    );
    // Screened before scoring: no gate margin, no votes.
    assert_eq!(serial_audit.best_gate_margin, None);
    assert!(serial_audit.votes.is_empty());
    assert_eq!(serial_audit.beeps, 3);
}

#[test]
fn twin_reject_is_typed_and_thread_invariant() {
    let _g = guard();
    let s = scene();
    let auth = enrolled(&s);
    let p = Placement::standing_front(0.7);

    // An accomplice matching the victim's stature within 0.3
    // population standard deviations, with their own micro-texture.
    let plan = SpoofPlan::twin_of(VICTIM_SEED, 0.3, 91);
    let attack = plan.capture_train(&s, &p, 3, 3, 200);

    let (serial_decision, serial_audit) = attempt(&auth, &attack, 1);
    let (pooled_decision, pooled_audit) = attempt(&auth, &attack, pool_threads());

    assert_eq!(serial_decision, pooled_decision);
    assert_eq!(
        serial_audit, pooled_audit,
        "spoof audits must not depend on the worker-thread count"
    );

    // A live body passes the spatial screen; the classifier owns the
    // reject, so the kind is a classifier kind and the gate margin was
    // actually measured.
    assert_eq!(serial_decision, AuthDecision::Rejected);
    assert_eq!(serial_audit.verdict, AuthVerdict::Rejected);
    assert!(
        matches!(
            serial_audit.reject_kind,
            RejectKind::SpooferGate | RejectKind::NoMajority
        ),
        "twin reject must be classifier-typed, got {:?}",
        serial_audit.reject_kind
    );
    assert_eq!(serial_audit.claimed_user, Some(VICTIM_ID));
    assert!(!serial_audit.reject_reason.is_empty());
    assert!(
        serial_audit.best_gate_margin.is_some(),
        "the twin's features must have been scored"
    );
    // The spatial check ran and passed: the measured spread is on the
    // record, at or below the ceiling.
    let ceiling = SpatialCheckConfig::default().max_coherence;
    let spread = serial_audit
        .spatial_coherence
        .expect("an enabled spatial check records its measurement");
    assert!(spread <= ceiling, "live spread {spread} within {ceiling}");
}

#[test]
fn genuine_attempt_survives_the_screen_and_thread_count() {
    let _g = guard();
    let s = scene();
    let auth = enrolled(&s);
    let p = Placement::standing_front(0.7);

    let victim = BodyModel::from_seed(VICTIM_SEED);
    let probe = s.capture_train(&victim, &p, 4, 5, 300);

    let (serial_decision, serial_audit) = attempt(&auth, &probe, 1);
    let (pooled_decision, pooled_audit) = attempt(&auth, &probe, pool_threads());

    assert_eq!(serial_decision, pooled_decision);
    assert_eq!(serial_audit, pooled_audit);

    // The screen must not cost the genuine user their accept, and an
    // accepted audit is typed `None` with an empty reason.
    assert_eq!(
        serial_decision,
        AuthDecision::Accepted {
            user_id: VICTIM_ID as usize
        }
    );
    assert_eq!(
        serial_audit.verdict,
        AuthVerdict::Accepted { user_id: VICTIM_ID }
    );
    assert_eq!(serial_audit.reject_kind, RejectKind::None);
    assert!(serial_audit.reject_reason.is_empty());
    let ceiling = SpatialCheckConfig::default().max_coherence;
    let spread = serial_audit.spatial_coherence.unwrap();
    assert!(spread <= ceiling);
}
