//! Property tests for the Prometheus text-format helpers.
//!
//! The exposition file is parsed by an external scraper, so the
//! escaping and sanitising rules are a wire contract: a label value
//! must round-trip through the standard unescaping rules, and a
//! sanitised metric name must always match `[a-zA-Z_:][a-zA-Z0-9_:]*`.
//!
//! The vendored proptest stub has no string strategies, so strings are
//! built from generated code-point vectors, with every 4th draw forced
//! onto the characters the escaper actually treats specially
//! (backslash, quote, newline, dot) — uniform unicode alone would
//! almost never hit them.

use echo_obs::export::{prometheus_escape_label, prometheus_sanitize_name};
use proptest::prelude::*;

/// Maps one generated draw to a char, biased towards the escaper's
/// special cases.
fn draw_char(i: usize, code: u32) -> char {
    if i.is_multiple_of(4) {
        ['\\', '"', '\n', '.', 'µ', '{', '}'][(code % 7) as usize]
    } else {
        char::from_u32(code).unwrap_or('\u{FFFD}')
    }
}

fn build_string(codes: &[u32]) -> String {
    codes
        .iter()
        .enumerate()
        .map(|(i, &c)| draw_char(i, c))
        .collect()
}

/// The inverse of the exposition escaping: `\\` → `\`, `\"` → `"`,
/// `\n` → newline, exactly as a conforming scraper decodes values.
fn unescape_label(escaped: &str) -> Option<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn name_is_valid(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Escaping is lossless: any unicode string survives an
    /// escape → unescape round trip.
    fn escape_label_round_trips(codes in prop::collection::vec(0u32..0x11_0000, 0..64)) {
        let value = build_string(&codes);
        let escaped = prometheus_escape_label(&value);
        prop_assert_eq!(unescape_label(&escaped), Some(value));
    }

    /// The escaped form never contains the characters that terminate a
    /// quoted label value mid-string: a raw `"` or a newline.
    fn escaped_label_is_quote_safe(codes in prop::collection::vec(0u32..0x11_0000, 0..64)) {
        let escaped = prometheus_escape_label(&build_string(&codes));
        prop_assert!(!escaped.contains('\n'));
        let bytes = escaped.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                // Every quote must be preceded by an odd run of
                // backslashes (i.e. it is escaped).
                let run = bytes[..i].iter().rev().take_while(|&&b| b == b'\\').count();
                prop_assert!(run % 2 == 1, "unescaped quote in {:?}", escaped);
            }
        }
    }

    /// Sanitised names always match the Prometheus name grammar and
    /// are stable under re-sanitising.
    fn sanitised_names_match_grammar(codes in prop::collection::vec(0u32..0x11_0000, 0..48)) {
        let name = build_string(&codes);
        let clean = prometheus_sanitize_name(&name);
        prop_assert!(name_is_valid(&clean), "{:?} -> {:?}", name, clean);
        prop_assert_eq!(prometheus_sanitize_name(&clean), clean);
    }

    /// Names in the workspace's dotted convention pass through with
    /// only dots rewritten.
    fn dotted_names_only_lose_dots(codes in prop::collection::vec(0u32..36, 1..24)) {
        // Draws map onto [a-z0-9.], first char forced alphabetic.
        let name: String = codes
            .iter()
            .enumerate()
            .map(|(i, &c)| match c {
                0..=25 => (b'a' + c as u8) as char,
                26..=34 if i > 0 => (b'0' + (c - 26) as u8) as char,
                _ if i > 0 => '.',
                _ => 'x',
            })
            .collect();
        let clean = prometheus_sanitize_name(&name);
        prop_assert_eq!(clean, name.replace('.', "_"));
    }
}
