//! Integration tests for the echo-obs registry, metrics, spans, and the
//! JSON exporter.
//!
//! The registry, the enabled flag, and `reset()` are process-global, so
//! every test takes `guard()` first — the suite runs effectively
//! serially regardless of the harness thread count.

use echo_obs::{
    counter, gauge, histogram, is_enabled, registry, reset, set_enabled, snapshot, span,
    BUCKET_BOUNDS_NS,
};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset();
    set_enabled(true);
    g
}

/// Re-enables collection when a test that disabled it panics.
struct EnabledGuard;
impl Drop for EnabledGuard {
    fn drop(&mut self) {
        set_enabled(true);
    }
}

#[test]
fn counter_accumulates_and_resets() {
    let _g = guard();
    let c = counter!("test.counter.basic");
    assert_eq!(c.get(), 0);
    c.inc();
    c.add(41);
    assert_eq!(c.get(), 42);
    reset();
    assert_eq!(c.get(), 0);
}

#[test]
fn macro_returns_same_handle_as_registry() {
    let _g = guard();
    let via_macro = counter!("test.counter.identity");
    let via_registry = registry().counter("test.counter.identity");
    assert!(std::ptr::eq(via_macro, via_registry));
    via_macro.inc();
    assert_eq!(via_registry.get(), 1);
}

#[test]
fn counters_accumulate_across_threads() {
    let _g = guard();
    let c = counter!("test.counter.threads");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..1_000 {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), 8_000);
}

#[test]
fn gauge_set_and_add() {
    let _g = guard();
    let g = gauge!("test.gauge.basic");
    g.set(7);
    assert_eq!(g.get(), 7);
    g.add(-10);
    assert_eq!(g.get(), -3);
    reset();
    assert_eq!(g.get(), 0);
}

#[test]
fn histogram_buckets_observations_correctly() {
    let _g = guard();
    let h = histogram!("test.hist.buckets");
    // One observation per bound, exactly at the bound (inclusive), plus
    // one just above the last bound (overflow) and one at zero.
    for &bound in &BUCKET_BOUNDS_NS {
        h.observe_ns(bound);
    }
    h.observe_ns(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] + 1);
    h.observe_ns(0);
    let buckets = h.bucket_counts();
    assert_eq!(buckets[0], 2, "0 and the first bound share bucket 0");
    for (i, &count) in buckets
        .iter()
        .enumerate()
        .take(BUCKET_BOUNDS_NS.len())
        .skip(1)
    {
        assert_eq!(count, 1, "bucket {i}");
    }
    assert_eq!(buckets[BUCKET_BOUNDS_NS.len()], 1, "overflow bucket");
    assert_eq!(h.count(), BUCKET_BOUNDS_NS.len() as u64 + 2);
    let expected_sum: u64 =
        BUCKET_BOUNDS_NS.iter().sum::<u64>() + BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] + 1;
    assert_eq!(h.sum_ns(), expected_sum);
    assert_eq!(h.min_ns(), Some(0));
    assert_eq!(
        h.max_ns(),
        Some(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] + 1)
    );
}

#[test]
fn histogram_empty_has_no_extremes() {
    let _g = guard();
    let h = histogram!("test.hist.empty");
    assert_eq!(h.count(), 0);
    assert_eq!(h.min_ns(), None);
    assert_eq!(h.max_ns(), None);
    let snap = snapshot();
    let hs = snap.histogram("test.hist.empty").expect("registered");
    assert_eq!(hs.mean_ns(), None);
}

#[test]
fn span_records_into_histogram() {
    let _g = guard();
    {
        let _span = span!("test.span.basic");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let h = histogram!("test.span.basic");
    assert_eq!(h.count(), 1);
    assert!(
        h.sum_ns() >= 2_000_000,
        "2ms sleep must record ≥ 2ms, got {}ns",
        h.sum_ns()
    );
}

#[test]
fn disabled_registry_is_a_no_op() {
    let _g = guard();
    let _restore = EnabledGuard;
    let c = counter!("test.disabled.counter");
    let g = gauge!("test.disabled.gauge");
    let h = histogram!("test.disabled.hist");
    set_enabled(false);
    assert!(!is_enabled());
    c.inc();
    c.add(100);
    g.set(5);
    g.add(5);
    h.observe_ns(1_000);
    {
        let span = span!("test.disabled.hist");
        // A disabled span holds no start time — the clock was never read.
        assert!(format!("{span:?}").contains("start: None"));
    }
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum_ns(), 0);
    let snap = snapshot();
    assert!(!snap.enabled);
    set_enabled(true);
    c.inc();
    assert_eq!(c.get(), 1, "re-enabling resumes collection");
}

#[test]
fn snapshot_lookups_and_sorting() {
    let _g = guard();
    counter!("test.snap.b").add(2);
    counter!("test.snap.a").add(1);
    gauge!("test.snap.g").set(-4);
    let snap = snapshot();
    assert_eq!(snap.counter("test.snap.a"), Some(1));
    assert_eq!(snap.counter("test.snap.b"), Some(2));
    assert_eq!(snap.counter("test.snap.missing"), None);
    assert_eq!(snap.gauge("test.snap.g"), Some(-4));
    let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "counters sorted by name");
}

#[test]
fn json_snapshot_round_trips_content() {
    let _g = guard();
    counter!("test.json.counter").add(3);
    gauge!("test.json.gauge").set(9);
    histogram!("test.json.hist").observe_ns(2_000);
    let json = snapshot().to_json();
    assert!(json.contains("\"test.json.counter\": 3"));
    assert!(json.contains("\"test.json.gauge\": 9"));
    assert!(json.contains("\"name\": \"test.json.hist\""));
    assert!(json.contains("\"count\": 1"));
    assert!(json.contains("\"sum_ns\": 2000"));
    // 2_000ns lands in the second bucket (bound 5_000).
    assert!(json.contains("{\"le_ns\": 5000, \"count\": 1}"));
    // Overflow bucket bound serialises as null.
    assert!(json.contains("\"le_ns\": null"));
    // Two snapshots of the same state serialise byte-identically.
    assert_eq!(json, snapshot().to_json());
}
