//! Windowed per-tenant telemetry: epoch rings, rollups, drift watch.
//!
//! The cumulative registry ([`crate::snapshot`]) answers "what happened
//! since the process started"; this module answers "what is happening
//! *now*, per tenant". Every authentication decision that carries a
//! tenant id (see [`crate::audit::tenant_scope`]) lands in a per-tenant
//! **epoch bucket**; once a bucket holds [`epoch_len`] decisions it is
//! closed and a fresh one opened, with the last [`WINDOW_EPOCHS`]
//! closed buckets kept in a ring.
//!
//! # Epochs are logical, not temporal
//!
//! An epoch advances on *decision count*, never on the wall clock, so
//! the bucketing of a fixed workload is bit-identical across thread
//! counts and machine speeds — the same contract every other `echo-obs`
//! structure keeps, pinned by the `window_determinism` suite. Two
//! fields are explicitly outside the contract: the per-rollup `qps`
//! (wall-derived by definition) and the *placement* of latency
//! observations in histogram buckets (their count is deterministic,
//! their values are not). [`WindowSnapshot::fingerprint`] hashes only
//! the deterministic projection.
//!
//! # Drift watch
//!
//! At enrolment time the serving layer freezes a **reference sketch**
//! of gate margins over the enrolment corpus ([`set_reference`]). Each
//! time a tenant's epoch closes, the margins of its last
//! [`DRIFT_EPOCHS`] epochs are merged and compared to the reference
//! with a population-stability index ([`crate::sketch::psi`]). The
//! score is carried on every [`WindowSnapshot`]; an upward crossing of
//! [`set_drift_threshold`] records a typed [`DriftAlarm`] (drained via
//! [`take_drift_alarms`]) and bumps the `obs.drift_alarms` counter.

use crate::audit::{AuthAudit, AuthVerdict, RejectKind};
use crate::metrics::BUCKET_BOUNDS_NS;
use crate::registry::collecting;
use crate::sketch::{psi, Sketch};
use crate::snapshot::HistogramSnapshot;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Closed epochs retained per tenant (plus the current partial one).
pub const WINDOW_EPOCHS: usize = 64;

/// Decisions per epoch unless overridden with [`set_epoch_len`].
pub const DEFAULT_EPOCH_LEN: u64 = 32;

/// Epochs merged into the live side of the drift comparison.
pub const DRIFT_EPOCHS: usize = 8;

/// Default PSI threshold for [`DriftAlarm`]s — the conventional
/// "major population shift" boundary.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.25;

/// Rollup spans reported on every snapshot, in epochs.
pub const ROLLUP_SPANS: [usize; 3] = [1, 8, WINDOW_EPOCHS];

/// Distinct rejection classes tracked per window (every
/// [`RejectKind`] except `None`).
pub const REJECT_CLASSES: usize = 5;

/// The slot a rejection class occupies in [`WindowRollup::rejects`],
/// or `None` for [`RejectKind::None`] (an accept).
pub fn reject_slot(kind: RejectKind) -> Option<usize> {
    match kind {
        RejectKind::None => None,
        RejectKind::CaptureScreen => Some(0),
        RejectKind::ReplaySignature => Some(1),
        RejectKind::SpooferGate => Some(2),
        RejectKind::NoMajority => Some(3),
        RejectKind::Overloaded => Some(4),
    }
}

/// Stable labels for the [`WindowRollup::rejects`] slots, in order.
pub const REJECT_LABELS: [&str; REJECT_CLASSES] = [
    "capture_screen",
    "replay_signature",
    "spoofer_gate",
    "no_majority",
    "overloaded",
];

/// A windowed latency histogram on the shared [`BUCKET_BOUNDS_NS`]
/// ladder: plain counts, mergeable, no atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatHist {
    pub count: u64,
    pub sum_ns: u64,
    pub buckets: [u64; BUCKET_BOUNDS_NS.len() + 1],
}

impl Default for LatHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatHist {
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            buckets: [0; BUCKET_BOUNDS_NS.len() + 1],
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LatHist) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Subtracts `earlier` from `self` (for before/after deltas against
    /// one daemon). Saturates rather than panicking if the windows
    /// rolled between the two reads.
    pub fn delta_since(&self, earlier: &LatHist) -> LatHist {
        let mut out = LatHist::new();
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        out
    }

    /// Mean observation in nanoseconds.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Bucket-resolution `q`-quantile via the shared snapshot
    /// interpolation (no min/max tightening — windows don't track
    /// extremes).
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        HistogramSnapshot {
            name: String::new(),
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: None,
            max_ns: None,
            buckets: self.buckets.to_vec(),
        }
        .quantile_ns(q)
    }
}

/// One epoch's worth of decisions for one tenant (or the global
/// aggregate).
#[derive(Debug, Clone)]
struct EpochBucket {
    epoch: u64,
    decisions: u64,
    accepted: u64,
    rejects: [u64; REJECT_CLASSES],
    margins: Sketch,
    coherence: Sketch,
    lat: LatHist,
    /// Wall-clock open time; feeds `qps` only (outside the
    /// determinism contract).
    opened: Instant,
}

impl EpochBucket {
    fn new(epoch: u64) -> Self {
        Self {
            epoch,
            decisions: 0,
            accepted: 0,
            rejects: [0; REJECT_CLASSES],
            margins: Sketch::new(),
            coherence: Sketch::new(),
            lat: LatHist::new(),
            opened: Instant::now(),
        }
    }

    fn absorb(&mut self, audit: &AuthAudit) {
        self.decisions += 1;
        match audit.verdict {
            AuthVerdict::Accepted { .. } => self.accepted += 1,
            AuthVerdict::Rejected | AuthVerdict::Overloaded => {
                if let Some(slot) = reject_slot(audit.reject_kind) {
                    self.rejects[slot] += 1;
                }
            }
        }
        if let Some(m) = audit.best_gate_margin {
            self.margins.add(m);
        }
        if let Some(c) = audit.spatial_coherence {
            self.coherence.add(c);
        }
    }
}

/// Aggregated decisions over a span of epochs — the unit every
/// [`WindowSnapshot`] reports three of (1 / 8 / 64 epochs) plus a
/// cumulative one.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRollup {
    /// Epochs this rollup spans (including the current partial one).
    pub epochs: u64,
    pub decisions: u64,
    pub accepted: u64,
    /// Rejections by class, indexed per [`reject_slot`] /
    /// [`REJECT_LABELS`].
    pub rejects: [u64; REJECT_CLASSES],
    /// Gate-margin sketch over the span.
    pub margins: Sketch,
    /// Spatial-coherence sketch over the span.
    pub coherence: Sketch,
    /// End-to-end latency histogram over the span.
    pub lat: LatHist,
    /// Decisions per wall-clock second over the span. **Not**
    /// deterministic.
    pub qps: f64,
}

impl WindowRollup {
    fn empty() -> Self {
        Self {
            epochs: 0,
            decisions: 0,
            accepted: 0,
            rejects: [0; REJECT_CLASSES],
            margins: Sketch::new(),
            coherence: Sketch::new(),
            lat: LatHist::new(),
            qps: 0.0,
        }
    }

    fn absorb_audit(&mut self, audit: &AuthAudit) {
        self.decisions += 1;
        match audit.verdict {
            AuthVerdict::Accepted { .. } => self.accepted += 1,
            AuthVerdict::Rejected | AuthVerdict::Overloaded => {
                if let Some(slot) = reject_slot(audit.reject_kind) {
                    self.rejects[slot] += 1;
                }
            }
        }
        if let Some(m) = audit.best_gate_margin {
            self.margins.add(m);
        }
        if let Some(c) = audit.spatial_coherence {
            self.coherence.add(c);
        }
    }

    fn absorb_bucket(&mut self, b: &EpochBucket) {
        self.epochs += 1;
        self.decisions += b.decisions;
        self.accepted += b.accepted;
        for (dst, src) in self.rejects.iter_mut().zip(b.rejects.iter()) {
            *dst += src;
        }
        self.margins.merge(&b.margins);
        self.coherence.merge(&b.coherence);
        self.lat.merge(&b.lat);
    }

    fn hash_into(&self, h: &mut Fnv) {
        h.write(self.epochs);
        h.write(self.decisions);
        h.write(self.accepted);
        for &r in &self.rejects {
            h.write(r);
        }
        for &b in self.margins.bins() {
            h.write(b);
        }
        for &b in self.coherence.bins() {
            h.write(b);
        }
        // Latency: the observation *count* is deterministic; the bucket
        // placement and sum are wall-clock and excluded.
        h.write(self.lat.count);
    }
}

/// A point-in-time view of one tenant's windows (or the global
/// aggregate when `tenant` is `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Tenant id, or `None` for the cross-tenant global window.
    pub tenant: Option<u64>,
    /// Current (partial) epoch number, starting at 0.
    pub epoch: u64,
    /// Decisions per epoch in force when the snapshot was taken.
    pub epoch_len: u64,
    /// Latest PSI drift score against the enrolment-time reference;
    /// `None` until a reference exists and an epoch has closed.
    pub drift: Option<f64>,
    /// Everything since the window was created (immune to ring
    /// eviction — the delta base for `load_test`).
    pub cum: WindowRollup,
    /// Rollups over the trailing [`ROLLUP_SPANS`] epochs, in order.
    pub windows: [WindowRollup; 3],
}

impl WindowSnapshot {
    /// FNV-1a hash of the deterministic projection of the snapshot:
    /// epoch counters, decision/verdict counts, sketch bins, latency
    /// observation counts, and the drift-score bits. Excludes `qps`,
    /// latency bucket placement, and latency sums — the wall-clock
    /// fields. Two runs of the same logical workload must produce
    /// equal fingerprints regardless of thread count.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.tenant.map_or(u64::MAX, |t| t));
        h.write(self.epoch);
        h.write(self.epoch_len);
        h.write(self.drift.map_or(0, |d| d.to_bits()));
        self.cum.hash_into(&mut h);
        for w in &self.windows {
            w.hash_into(&mut h);
        }
        h.finish()
    }
}

/// One drift-threshold crossing, recorded when a tenant's PSI score
/// rises above the configured threshold after having been at or below
/// it (re-armed only once the score falls back under).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlarm {
    pub tenant: u64,
    /// The epoch whose close triggered the alarm.
    pub epoch: u64,
    /// The PSI score that crossed.
    pub score: f64,
    /// The threshold in force at the time.
    pub threshold: f64,
}

struct TenantWindow {
    /// Back entry is the current partial epoch; older entries are
    /// closed, capped at [`WINDOW_EPOCHS`] + 1 total.
    ring: VecDeque<EpochBucket>,
    cum: WindowRollup,
    /// Epochs ever closed (for `cum.epochs`, which counts the current
    /// partial epoch too).
    closed_epochs: u64,
    last_drift: Option<f64>,
    opened: Instant,
}

impl TenantWindow {
    fn new() -> Self {
        let mut ring = VecDeque::new();
        ring.push_back(EpochBucket::new(0));
        Self {
            ring,
            cum: WindowRollup::empty(),
            closed_epochs: 0,
            last_drift: None,
            opened: Instant::now(),
        }
    }

    fn current_mut(&mut self) -> &mut EpochBucket {
        // The ring is never empty: `new` seeds epoch 0 and every close
        // pushes a successor.
        self.ring.back_mut().expect("window ring is never empty")
    }

    /// Closes the current epoch if it is full. Returns the new drift
    /// score when one was computed and it crossed the threshold upward.
    fn maybe_close_epoch(
        &mut self,
        epoch_len: u64,
        reference: Option<&Sketch>,
        threshold: f64,
    ) -> Option<f64> {
        if self.current_mut().decisions < epoch_len {
            return None;
        }
        let closed_epoch = self.current_mut().epoch;
        let mut crossed = None;
        if let Some(reference) = reference {
            let mut live = Sketch::new();
            for b in self.ring.iter().rev().take(DRIFT_EPOCHS) {
                live.merge(&b.margins);
            }
            if let Some(score) = psi(reference, &live) {
                let was_below = self.last_drift.is_none_or(|p| p <= threshold);
                if score > threshold && was_below {
                    crossed = Some(score);
                }
                self.last_drift = Some(score);
            }
        }
        self.closed_epochs += 1;
        self.ring.push_back(EpochBucket::new(closed_epoch + 1));
        while self.ring.len() > WINDOW_EPOCHS + 1 {
            self.ring.pop_front();
        }
        crossed
    }

    fn rollup(&self, span: usize, now: Instant) -> WindowRollup {
        let mut out = WindowRollup::empty();
        let mut oldest: Option<Instant> = None;
        for b in self.ring.iter().rev().take(span) {
            out.absorb_bucket(b);
            oldest = Some(b.opened);
        }
        if let Some(start) = oldest {
            let secs = now.duration_since(start).as_secs_f64();
            if secs > 1e-9 {
                out.qps = out.decisions as f64 / secs;
            }
        }
        out
    }

    fn snapshot(&self, tenant: Option<u64>, epoch_len: u64) -> WindowSnapshot {
        let now = Instant::now();
        let mut cum = self.cum.clone();
        cum.epochs = self.closed_epochs + 1;
        let secs = now.duration_since(self.opened).as_secs_f64();
        if secs > 1e-9 {
            cum.qps = cum.decisions as f64 / secs;
        }
        let windows = [
            self.rollup(ROLLUP_SPANS[0], now),
            self.rollup(ROLLUP_SPANS[1], now),
            self.rollup(ROLLUP_SPANS[2], now),
        ];
        WindowSnapshot {
            tenant,
            epoch: self.ring.back().map_or(0, |b| b.epoch),
            epoch_len,
            drift: self.last_drift,
            cum,
            windows,
        }
    }
}

struct WindowState {
    epoch_len: u64,
    drift_threshold: f64,
    global: TenantWindow,
    tenants: BTreeMap<u64, TenantWindow>,
    references: BTreeMap<u64, Sketch>,
    alarms: Vec<DriftAlarm>,
}

impl WindowState {
    fn new() -> Self {
        Self {
            epoch_len: DEFAULT_EPOCH_LEN,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            global: TenantWindow::new(),
            tenants: BTreeMap::new(),
            references: BTreeMap::new(),
            alarms: Vec::new(),
        }
    }
}

fn state() -> &'static Mutex<WindowState> {
    static STATE: OnceLock<Mutex<WindowState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(WindowState::new()))
}

fn lock() -> std::sync::MutexGuard<'static, WindowState> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Feeds one tenanted decision into the tenant's window and the global
/// window. Called by [`crate::record_audit`] for audits carrying a
/// tenant id; call directly only in tests. No-op while the registry is
/// disabled.
pub fn observe_decision(tenant: u64, audit: &AuthAudit) {
    if !collecting() {
        return;
    }
    let mut st = lock();
    let epoch_len = st.epoch_len.max(1);
    let threshold = st.drift_threshold;

    // Global window first (no drift reference — drift is per tenant).
    st.global.current_mut().absorb(audit);
    st.global.cum.absorb_audit(audit);
    st.global.maybe_close_epoch(epoch_len, None, threshold);

    let window = st.tenants.entry(tenant).or_insert_with(TenantWindow::new);
    window.current_mut().absorb(audit);
    window.cum.absorb_audit(audit);

    // The reference is cloned out first: the borrow checker cannot see
    // that the reference map and the window map are disjoint fields.
    let reference = st.references.get(&tenant).cloned();
    let window = st.tenants.get_mut(&tenant).expect("window just inserted");
    if let Some(score) = window.maybe_close_epoch(epoch_len, reference.as_ref(), threshold) {
        let epoch = window.ring.back().map_or(0, |b| b.epoch.saturating_sub(1));
        st.alarms.push(DriftAlarm {
            tenant,
            epoch,
            score,
            threshold,
        });
        crate::counter!("obs.drift_alarms").inc();
    }
}

/// Feeds one end-to-end latency observation (nanoseconds) into the
/// tenant's and the global current epoch buckets. Latency does not
/// advance epochs — only decisions do.
pub fn observe_latency(tenant: u64, ns: u64) {
    if !collecting() {
        return;
    }
    let mut st = lock();
    st.global.current_mut().lat.observe_ns(ns);
    st.global.cum.lat.observe_ns(ns);
    let window = st.tenants.entry(tenant).or_insert_with(TenantWindow::new);
    window.current_mut().lat.observe_ns(ns);
    window.cum.lat.observe_ns(ns);
}

/// Builds a reference sketch from a slice of enrolment-corpus gate
/// margins.
pub fn reference_from_margins(margins: &[f64]) -> Sketch {
    let mut s = Sketch::new();
    for &m in margins {
        s.add(m);
    }
    s
}

/// Freezes `reference` as the drift baseline for `tenant`, replacing
/// any previous one and re-arming the alarm.
pub fn set_reference(tenant: u64, reference: Sketch) {
    let mut st = lock();
    st.references.insert(tenant, reference);
    if let Some(w) = st.tenants.get_mut(&tenant) {
        w.last_drift = None;
    }
}

/// Overrides the decisions-per-epoch length (clamped to ≥ 1). Affects
/// only epochs closed after the call; tests use short epochs to
/// exercise ring turnover quickly.
pub fn set_epoch_len(len: u64) {
    lock().epoch_len = len.max(1);
}

/// The decisions-per-epoch length in force.
pub fn epoch_len() -> u64 {
    lock().epoch_len
}

/// Sets the PSI threshold above which a [`DriftAlarm`] is recorded.
pub fn set_drift_threshold(threshold: f64) {
    lock().drift_threshold = threshold;
}

/// The PSI alarm threshold in force.
pub fn drift_threshold() -> f64 {
    lock().drift_threshold
}

/// Snapshot of one tenant's windows, if the tenant has ever decided.
pub fn snapshot_tenant(tenant: u64) -> Option<WindowSnapshot> {
    let st = lock();
    st.tenants
        .get(&tenant)
        .map(|w| w.snapshot(Some(tenant), st.epoch_len))
}

/// Snapshot of the cross-tenant global window.
pub fn snapshot_global() -> WindowSnapshot {
    let st = lock();
    st.global.snapshot(None, st.epoch_len)
}

/// Global window plus every tenant window, tenants in ascending id
/// order.
pub fn snapshot_windows() -> (WindowSnapshot, Vec<WindowSnapshot>) {
    let st = lock();
    let global = st.global.snapshot(None, st.epoch_len);
    let tenants = st
        .tenants
        .iter()
        .map(|(&t, w)| w.snapshot(Some(t), st.epoch_len))
        .collect();
    (global, tenants)
}

/// Drains all drift alarms recorded since the last drain, in recording
/// order.
pub fn take_drift_alarms() -> Vec<DriftAlarm> {
    std::mem::take(&mut lock().alarms)
}

/// Drops every window, reference sketch, and pending alarm, and
/// restores the default epoch length and drift threshold. Test and
/// bench harnesses call this between workloads.
pub fn reset_windows() {
    let mut st = lock();
    *st = WindowState::new();
}

/// FNV-1a over `u64` words — tiny, dependency-free, stable across
/// platforms (unlike `DefaultHasher`, whose algorithm is unspecified).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(margin: f64, accepted: bool) -> AuthAudit {
        AuthAudit {
            trace: 0,
            seq: 0,
            tenant: None,
            claimed_user: Some(1),
            beeps: 3,
            votes: vec![(1, 2)],
            votes_needed: 2,
            best_gate_margin: Some(margin),
            channels: 6,
            degraded_mask: 0,
            retry_index: 0,
            verdict: if accepted {
                AuthVerdict::Accepted { user_id: 1 }
            } else {
                AuthVerdict::Rejected
            },
            reject_kind: if accepted {
                RejectKind::None
            } else {
                RejectKind::NoMajority
            },
            reject_reason: if accepted { String::new() } else { "nm".into() },
            spatial_coherence: Some(0.4),
        }
    }

    #[test]
    fn epochs_advance_on_decision_count() {
        let _guard = crate::unit_test_lock();
        reset_windows();
        set_epoch_len(4);
        for i in 0..10 {
            observe_decision(7, &audit(0.1, i % 2 == 0));
        }
        let snap = snapshot_tenant(7).unwrap();
        assert_eq!(snap.epoch, 2, "10 decisions / epoch_len 4 → epoch 2");
        assert_eq!(snap.cum.decisions, 10);
        assert_eq!(snap.cum.accepted, 5);
        assert_eq!(
            snap.cum.rejects[reject_slot(RejectKind::NoMajority).unwrap()],
            5
        );
        // 1-epoch rollup sees only the current partial epoch.
        assert_eq!(snap.windows[0].decisions, 2);
        // 64-epoch rollup sees everything.
        assert_eq!(snap.windows[2].decisions, 10);
        let global = snapshot_global();
        assert_eq!(global.cum.decisions, 10);
        assert_eq!(global.tenant, None);
        reset_windows();
    }

    #[test]
    fn latency_feeds_windows_without_advancing_epochs() {
        let _guard = crate::unit_test_lock();
        reset_windows();
        set_epoch_len(4);
        observe_decision(3, &audit(0.0, true));
        for _ in 0..100 {
            observe_latency(3, 2_000_000);
        }
        let snap = snapshot_tenant(3).unwrap();
        assert_eq!(snap.epoch, 0, "latency must not close epochs");
        assert_eq!(snap.cum.lat.count, 100);
        assert!(snap.cum.lat.quantile_ns(0.5).unwrap() > 1_000_000);
        reset_windows();
    }

    #[test]
    fn ring_caps_at_window_epochs_but_cum_survives() {
        let _guard = crate::unit_test_lock();
        reset_windows();
        set_epoch_len(1);
        let total = (WINDOW_EPOCHS + 40) as u64;
        for _ in 0..total {
            observe_decision(1, &audit(0.2, true));
        }
        let snap = snapshot_tenant(1).unwrap();
        assert_eq!(snap.cum.decisions, total);
        // The 64-bucket rollup spans the current (empty) partial epoch
        // plus the 63 most recent closed ones.
        assert_eq!(snap.windows[2].decisions, WINDOW_EPOCHS as u64 - 1);
        assert_eq!(snap.epoch, total);
        reset_windows();
    }

    #[test]
    fn drift_alarm_fires_once_per_crossing() {
        let _guard = crate::unit_test_lock();
        reset_windows();
        set_epoch_len(8);
        // Reference population centred at +0.5.
        let reference = reference_from_margins(&vec![0.5; 256]);
        set_reference(42, reference);
        // Live population centred at -0.5: a major shift.
        for _ in 0..32 {
            observe_decision(42, &audit(-0.5, false));
        }
        let snap = snapshot_tenant(42).unwrap();
        let drift = snap.drift.expect("epochs closed with a reference set");
        assert!(drift > DEFAULT_DRIFT_THRESHOLD, "shifted margins: {drift}");
        let alarms = take_drift_alarms();
        assert_eq!(alarms.len(), 1, "one alarm per upward crossing");
        assert_eq!(alarms[0].tenant, 42);
        assert!(alarms[0].score > alarms[0].threshold);
        assert!(take_drift_alarms().is_empty());
        reset_windows();
    }

    #[test]
    fn matching_population_stays_quiet() {
        let _guard = crate::unit_test_lock();
        reset_windows();
        set_epoch_len(8);
        set_reference(5, reference_from_margins(&vec![0.3; 256]));
        for _ in 0..32 {
            observe_decision(5, &audit(0.3, true));
        }
        let snap = snapshot_tenant(5).unwrap();
        let drift = snap.drift.unwrap();
        assert!(drift < 0.1, "same population must read stable: {drift}");
        assert!(take_drift_alarms().is_empty());
        reset_windows();
    }

    #[test]
    fn fingerprint_ignores_wall_clock_fields() {
        let _guard = crate::unit_test_lock();
        reset_windows();
        set_epoch_len(4);
        for _ in 0..6 {
            observe_decision(9, &audit(0.15, true));
            observe_latency(9, 1_000);
        }
        let a = snapshot_tenant(9).unwrap();
        let fp_a = a.fingerprint();
        // Same logical content, different wall-clock latencies and qps.
        reset_windows();
        set_epoch_len(4);
        for _ in 0..6 {
            observe_decision(9, &audit(0.15, true));
            observe_latency(9, 999_999);
        }
        let b = snapshot_tenant(9).unwrap();
        assert_eq!(fp_a, b.fingerprint());
        // But a different decision stream changes it.
        observe_decision(9, &audit(0.15, true));
        let c = snapshot_tenant(9).unwrap();
        assert_ne!(fp_a, c.fingerprint());
        reset_windows();
    }
}
