//! RAII stage spans: time a scope on the monotonic clock and record the
//! elapsed nanoseconds into a [`Histogram`] on drop.

use crate::metrics::Histogram;
use crate::registry::collecting;
use std::time::Instant;

/// A live span over one histogram. Created by [`Span::enter`] (usually
/// via the [`span!`](crate::span) macro); records its lifetime when
/// dropped. When the registry is disabled at entry, the span holds no
/// start time and drop does nothing — the clock is never read.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    histogram: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span over `histogram` if collection is enabled.
    #[inline]
    pub fn enter(histogram: &'static Histogram) -> Self {
        Self {
            histogram,
            start: collecting().then(Instant::now),
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.observe_ns(ns);
        }
    }
}
