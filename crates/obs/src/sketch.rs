//! A tiny deterministic quantile sketch for windowed score telemetry.
//!
//! The drift watch needs a compact summary of gate-margin and
//! spatial-coherence distributions that (a) merges across epoch
//! buckets, (b) yields quantiles, and (c) is **bit-identical across
//! thread counts** like every other `echo-obs` structure. Streaming
//! sketches with randomised or insertion-order-dependent compaction
//! (GK, KLL, t-digest) fail (c): two runs that observe the same
//! multiset in different orders produce different summaries.
//!
//! So this sketch is the boring thing that cannot be order-dependent:
//! a **fixed 64-bin histogram on an asinh-compressed axis**. `asinh`
//! behaves like `ln(2x)` for large `|x|` and like `x` near zero, so
//! one fixed grid resolves both the sub-0.1 gate margins near the
//! decision boundary and multi-unit outliers, for either sign, with no
//! per-distribution tuning. Bin contents are integer counts; inserting
//! is a pure function of the value; merging adds counts — determinism
//! is structural, not defended by tests alone (though it is also
//! pinned by `window_determinism`).
//!
//! The same fixed binning makes the population-stability-index
//! divergence ([`psi`]) between two sketches well defined: both sides
//! share bin edges by construction.

/// Number of bins in every [`Sketch`]. Fixed so sketches are always
/// mergeable and PSI-comparable.
pub const SKETCH_BINS: usize = 64;

/// Half-width of the compressed domain: values map through
/// `asinh(v * SCALE)` clamped to `[-RANGE, RANGE]`. `asinh(8·x) = 6`
/// at `x ≈ 25.2`, so scores beyond ±25 land in the edge bins.
const RANGE: f64 = 6.0;

/// Pre-compression scale. Gate margins cluster in `[-1, 1]`;
/// multiplying by 8 before `asinh` spends ~half the bins on that
/// interval.
const SCALE: f64 = 8.0;

/// A fixed-bin, order-independent quantile sketch over `f64` scores.
///
/// Insert with [`Sketch::add`], combine with [`Sketch::merge`], read
/// with [`Sketch::quantile`]. Non-finite values are counted in
/// [`Sketch::count`] via dedicated clamping (NaN is treated as `0.0`;
/// infinities clamp to the edge bins) so a poisoned score cannot
/// silently vanish from the population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    bins: [u64; SKETCH_BINS],
    count: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new()
    }
}

impl Sketch {
    /// An empty sketch.
    pub const fn new() -> Self {
        Self {
            bins: [0; SKETCH_BINS],
            count: 0,
        }
    }

    /// The bin index for `value` — a pure function of the value.
    fn bin_of(value: f64) -> usize {
        let v = if value.is_nan() { 0.0 } else { value };
        let t = (v * SCALE).asinh().clamp(-RANGE, RANGE);
        // t ∈ [-RANGE, RANGE] → [0, SKETCH_BINS); the upper clamp keeps
        // t == RANGE inside the last bin.
        let idx = ((t + RANGE) / (2.0 * RANGE) * SKETCH_BINS as f64).floor() as usize;
        idx.min(SKETCH_BINS - 1)
    }

    /// The lower edge of bin `i` back on the value axis.
    fn edge(i: usize) -> f64 {
        let t = -RANGE + 2.0 * RANGE * (i as f64) / (SKETCH_BINS as f64);
        t.sinh() / SCALE
    }

    /// Records one observation.
    pub fn add(&mut self, value: f64) {
        self.bins[Self::bin_of(value)] += 1;
        self.count += 1;
    }

    /// Adds every count of `other` into `self`. Order-independent:
    /// `a.merge(&b)` equals `b.merge(&a)` bin for bin.
    pub fn merge(&mut self, other: &Sketch) {
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
        self.count += other.count;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts — the deterministic fingerprint of the sketch.
    pub fn bins(&self) -> &[u64; SKETCH_BINS] {
        &self.bins
    }

    /// Rebuilds a sketch from raw bin counts (wire decode).
    pub fn from_bins(bins: [u64; SKETCH_BINS]) -> Self {
        let count = bins.iter().sum();
        Self { bins, count }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), interpolated linearly within
    /// the containing bin. `None` when the sketch is empty. The result
    /// is approximate (bin-resolution) but deterministic: a pure
    /// function of the bin counts.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank on [0, count-1], same convention as
        // `HistogramSnapshot::quantile_ns`.
        let rank = q * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo_rank = seen as f64;
            let hi_rank = (seen + c - 1) as f64;
            if rank <= hi_rank {
                let lo = Self::edge(i);
                let hi = Self::edge(i + 1);
                let frac = if c > 1 {
                    ((rank - lo_rank) / (hi_rank - lo_rank + 1.0)).clamp(0.0, 1.0)
                } else {
                    0.5
                };
                return Some(lo + (hi - lo) * frac);
            }
            seen += c;
        }
        // rank beyond the last populated bin (q == 1.0 rounding):
        // return the upper edge of the last populated bin.
        let last = self.bins.iter().rposition(|&c| c > 0)?;
        Some(Self::edge(last + 1))
    }
}

/// Population Stability Index between a `reference` and a `live`
/// sketch: `Σ (pᵢ − qᵢ) · ln(pᵢ / qᵢ)` over the shared bins, with a
/// small Laplace smoothing (`eps = 1e-3` pseudo-counts per bin) so
/// empty bins on either side stay finite. The epsilon is deliberately
/// tiny: larger pseudo-counts bias the score upward whenever the two
/// sides have very different populations sizes (a 32-decision live
/// window against a 10k-sample reference would read as drift).
/// Conventional reading: `< 0.1` stable, `0.1 – 0.25` moderate shift,
/// `> 0.25` major shift.
///
/// Returns `None` when either side is empty — "no data" must be
/// distinguishable from "no drift".
pub fn psi(reference: &Sketch, live: &Sketch) -> Option<f64> {
    if reference.count == 0 || live.count == 0 {
        return None;
    }
    const EPS: f64 = 1e-3;
    let ref_total = reference.count as f64 + EPS * SKETCH_BINS as f64;
    let live_total = live.count as f64 + EPS * SKETCH_BINS as f64;
    let mut score = 0.0;
    for i in 0..SKETCH_BINS {
        let p = (reference.bins[i] as f64 + EPS) / ref_total;
        let q = (live.bins[i] as f64 + EPS) / live_total;
        score += (p - q) * (p / q).ln();
    }
    Some(score)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> Sketch {
        let mut s = Sketch::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = Sketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(psi(&s, &s), None);
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let forward = filled(&[-0.4, -0.1, 0.0, 0.05, 0.3, 2.0, -7.5]);
        let backward = filled(&[-7.5, 2.0, 0.3, 0.05, 0.0, -0.1, -0.4]);
        assert_eq!(forward, backward);
    }

    #[test]
    fn merge_matches_bulk_insert() {
        let a = filled(&[0.1, 0.2, -0.3]);
        let b = filled(&[0.4, -0.5]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, filled(&[0.1, 0.2, -0.3, 0.4, -0.5]));
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(merged, other_way);
    }

    #[test]
    fn quantiles_are_ordered_and_in_range() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64 - 250.0) * 0.004).collect();
        let s = filled(&values);
        let p10 = s.quantile(0.1).unwrap();
        let p50 = s.quantile(0.5).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!(p10 < p50 && p50 < p99, "{p10} {p50} {p99}");
        // Values span [-1, 1]; quantiles must land near the data, and
        // the median of a symmetric population near zero.
        assert!(p50.abs() < 0.1, "median {p50}");
        assert!((-1.2..=1.2).contains(&p10));
        assert!((-1.2..=1.2).contains(&p99));
    }

    #[test]
    fn extreme_values_land_in_edge_bins() {
        let s = filled(&[f64::NEG_INFINITY, -1e9, 1e9, f64::INFINITY, f64::NAN]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.bins()[0], 2);
        assert_eq!(s.bins()[SKETCH_BINS - 1], 2);
        // NaN is clamped to 0.0, which lands in the middle of the grid.
        let nan_bin = s
            .bins()
            .iter()
            .enumerate()
            .find(|(i, &c)| c > 0 && *i != 0 && *i != SKETCH_BINS - 1)
            .map(|(i, _)| i)
            .unwrap();
        assert!((SKETCH_BINS / 2 - 1..=SKETCH_BINS / 2).contains(&nan_bin));
    }

    #[test]
    fn from_bins_round_trips() {
        let s = filled(&[0.1, -0.2, 0.3, 4.0]);
        let rebuilt = Sketch::from_bins(*s.bins());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.count(), 4);
    }

    #[test]
    fn psi_detects_shift_and_tolerates_identity() {
        let base: Vec<f64> = (0..400).map(|i| 0.2 + (i % 37) as f64 * 0.01).collect();
        let same = filled(&base);
        let shifted = filled(&base.iter().map(|v| v - 0.6).collect::<Vec<_>>());
        let none = psi(&same, &same).unwrap();
        let big = psi(&same, &shifted).unwrap();
        assert!(none.abs() < 1e-12, "identical populations: {none}");
        assert!(big > 0.25, "shifted population must alarm: {big}");
    }

    #[test]
    fn psi_is_finite_with_disjoint_support() {
        let lo = filled(&[-0.9; 50]);
        let hi = filled(&[0.9; 50]);
        let v = psi(&lo, &hi).unwrap();
        assert!(v.is_finite() && v > 0.25, "{v}");
    }
}
