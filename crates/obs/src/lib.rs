//! `echo-obs` — observability substrate for the EchoImage pipeline.
//!
//! A process-wide, thread-safe registry of three metric kinds:
//!
//! * [`Counter`] — monotonically increasing `u64` (cache hits, beeps
//!   processed, degraded-mode activations),
//! * [`Gauge`] — a settable `i64` level (cache occupancy, configured
//!   thread count),
//! * [`Histogram`] — fixed-bucket latency distribution in nanoseconds,
//!   fed by RAII [`Span`]s timed on the monotonic clock.
//!
//! Call sites name metrics through the [`counter!`], [`gauge!`],
//! [`histogram!`] and [`span!`] macros, which resolve the registry entry
//! once per call site and cache the `&'static` handle in a local
//! `OnceLock` — after the first pass a counter bump is one relaxed
//! atomic load (the enabled flag) plus one relaxed `fetch_add`.
//!
//! The whole registry can be disabled ([`set_enabled`]): every metric
//! operation then reduces to the single flag load and spans skip the
//! clock entirely, so instrumented hot paths run at ~zero overhead.
//!
//! # Determinism contract
//!
//! **Counter values are deterministic**: for a fixed workload they are
//! bit-for-bit identical across worker-thread counts and repeated runs,
//! because every counter counts *logical events* (a train imaged, a
//! cache slot created) rather than anything timing-dependent. The cache
//! layers in `echo-dsp` / `echoimage-core` uphold this by publishing a
//! shared in-flight slot under their lock before computing, so a cold
//! miss is counted exactly once no matter how many workers race for the
//! same key. **Histogram contents and gauges are wall-clock- or
//! machine-dependent** and are explicitly outside the contract; only
//! the *number* of histogram observations is deterministic.
//!
//! # Tracing and audit
//!
//! Beyond the aggregate metrics, the crate carries a per-attempt flight
//! recorder: [`trace`] mints a trace id per top-level unit of work and
//! records hierarchical [`TraceSpan`]s (opt-in via
//! [`set_trace_enabled`], deterministic 1-in-N [`set_trace_sampling`]),
//! and [`audit`] keeps one [`AuthAudit`] record per authentication
//! decision (on by default, disabled with the registry). The [`export`]
//! module serialises both as JSONL and as Chrome trace-event JSON for
//! Perfetto. See the module docs for the determinism contract.
//!
//! # Example
//!
//! ```
//! echo_obs::counter!("doc.events").inc();
//! {
//!     let _span = echo_obs::span!("doc.stage");
//!     // ... timed work ...
//! }
//! let snap = echo_obs::snapshot();
//! assert!(snap.counter("doc.events").unwrap() >= 1);
//! assert!(snap.to_json().contains("\"doc.stage\""));
//! ```

pub mod audit;
pub mod export;
pub mod json;
mod metrics;
mod registry;
pub mod sketch;
mod snapshot;
mod span;
pub mod trace;
pub mod window;

pub use audit::{
    record_audit, reset_audits, take_audits, tenant_scope, AuthAudit, AuthVerdict, RejectKind,
    TenantScope,
};
pub use json::escape_json;
pub use metrics::{Counter, Gauge, Histogram, BUCKET_BOUNDS_NS};
pub use registry::{is_enabled, registry, reset, set_enabled, Registry};
pub use sketch::{psi, Sketch, SKETCH_BINS};
pub use snapshot::{snapshot, HistogramSnapshot, MetricsSnapshot};
pub use span::Span;
pub use trace::{
    reset_traces, root_span, set_trace_enabled, set_trace_sampling, take_spans, trace_enabled,
    trace_events_dropped, trace_sampling, SpanEvent, TraceCtx, TraceSpan,
};
pub use window::{DriftAlarm, LatHist, WindowRollup, WindowSnapshot};

#[cfg(test)]
pub(crate) fn unit_test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Unit tests that toggle process-global observability state
    // (enabled flag, trace flag, ring buffers) serialise on this lock
    // so the parallel test runner cannot interleave them.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolves (and on first use registers) the named [`Counter`], caching
/// the handle per call site. `$name` must be a `&'static str`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolves (and on first use registers) the named [`Gauge`], caching
/// the handle per call site. `$name` must be a `&'static str`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolves (and on first use registers) the named [`Histogram`],
/// caching the handle per call site. `$name` must be a `&'static str`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Opens an RAII [`Span`] over the named histogram: the span records its
/// wall-clock lifetime (monotonic, nanoseconds) into the histogram when
/// dropped. Bind it — `let _span = span!("stage.imaging");` — or the
/// span closes immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($crate::histogram!($name))
    };
}
