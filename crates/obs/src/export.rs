//! Trace/audit exporters: JSONL for tooling, Chrome trace-event JSON
//! for Perfetto / `chrome://tracing`.
//!
//! The JSONL stream mixes span and audit lines, discriminated by a
//! `"type"` field, so one `--trace-out` file carries the whole flight
//! record. Span and parent ids are emitted as 16-digit hex *strings* —
//! they are full 64-bit hashes, and JSON numbers lose integer precision
//! past 2⁵³ in most consumers.

use crate::audit::{AuthAudit, AuthVerdict};
use crate::json::{escape_json, json_f64};
use crate::metrics::BUCKET_BOUNDS_NS;
use crate::snapshot::MetricsSnapshot;
use crate::trace::{AttrValue, SpanEvent};
use crate::window::{WindowSnapshot, REJECT_LABELS, ROLLUP_SPANS};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Writes `contents` to `path` atomically and durably: the bytes go to
/// a sibling temporary file first, are flushed and fsynced, and only
/// then renamed over the destination. A reader (or a crash, `kill -9`,
/// or an overloaded server shedding work mid-export) therefore sees
/// either the complete previous file or the complete new one — never a
/// truncated metrics snapshot or a torn half-written JSONL trace line.
///
/// On any error the destination is left exactly as it was and the
/// temporary file is cleaned up on a best-effort basis.
///
/// # Errors
///
/// Propagates the underlying I/O error (create, write, fsync or
/// rename), with the temporary path named in the message.
pub fn write_atomic<P: AsRef<Path>>(path: P, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let cleanup_on = |e: io::Error, what: &str| {
        let _ = std::fs::remove_file(&tmp);
        io::Error::new(e.kind(), format!("{what} {}: {e}", tmp.display()))
    };
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", tmp.display())))?;
    f.write_all(contents)
        .and_then(|()| f.flush())
        .map_err(|e| cleanup_on(e, "writing"))?;
    // Durability half of the contract: the data must be on disk before
    // the rename publishes it, or a power cut could publish an empty
    // file through the (metadata-ordered) rename.
    f.sync_all().map_err(|e| cleanup_on(e, "syncing"))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| cleanup_on(e, "renaming"))
}

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => format!("{v}"),
        AttrValue::I64(v) => format!("{v}"),
        AttrValue::F64(v) => json_f64(*v),
        AttrValue::Bool(v) => format!("{v}"),
        AttrValue::Str(v) => format!("\"{}\"", escape_json(v)),
    }
}

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(key), attr_json(value));
    }
    out.push('}');
    out
}

/// One span as a JSONL line (no trailing newline).
pub fn span_to_json(ev: &SpanEvent) -> String {
    let parent = if ev.parent == 0 {
        "null".to_string()
    } else {
        format!("\"{:016x}\"", ev.parent)
    };
    format!(
        "{{\"type\":\"span\",\"trace\":{},\"seq\":{},\"span\":\"{:016x}\",\"parent\":{},\
         \"name\":\"{}\",\"lidx\":{},\"start_ns\":{},\"dur_ns\":{},\"attrs\":{}}}",
        ev.trace,
        ev.seq,
        ev.span,
        parent,
        escape_json(ev.name),
        ev.lidx,
        ev.start_ns,
        ev.dur_ns,
        attrs_json(&ev.attrs)
    )
}

/// One audit record as a JSONL line (no trailing newline).
pub fn audit_to_json(a: &AuthAudit) -> String {
    let tenant = match a.tenant {
        Some(t) => format!("{t}"),
        None => "null".to_string(),
    };
    let claimed = match a.claimed_user {
        Some(u) => format!("{u}"),
        None => "null".to_string(),
    };
    let votes = {
        let mut s = String::from("[");
        for (i, (user, count)) in a.votes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{user},{count}]");
        }
        s.push(']');
        s
    };
    let margin = match a.best_gate_margin {
        Some(m) => json_f64(m),
        None => "null".to_string(),
    };
    let (verdict, accepted_user) = match &a.verdict {
        AuthVerdict::Accepted { user_id } => ("accepted", format!("{user_id}")),
        AuthVerdict::Rejected => ("rejected", "null".to_string()),
        AuthVerdict::Overloaded => ("overloaded", "null".to_string()),
    };
    let coherence = match a.spatial_coherence {
        Some(c) => json_f64(c),
        None => "null".to_string(),
    };
    format!(
        "{{\"type\":\"audit\",\"trace\":{},\"seq\":{},\"tenant\":{},\"claimed_user\":{},\
         \"beeps\":{},\
         \"votes\":{},\"votes_needed\":{},\"best_gate_margin\":{},\"channels\":{},\
         \"degraded_mask\":{},\"retry_index\":{},\"verdict\":\"{}\",\"accepted_user\":{},\
         \"reject_kind\":\"{}\",\"reject_reason\":\"{}\",\"spatial_coherence\":{}}}",
        a.trace,
        a.seq,
        tenant,
        claimed,
        a.beeps,
        votes,
        a.votes_needed,
        margin,
        a.channels,
        a.degraded_mask,
        a.retry_index,
        verdict,
        accepted_user,
        a.reject_kind.label(),
        escape_json(&a.reject_reason),
        coherence
    )
}

/// Serialises spans then audits as a JSONL document (newline per line,
/// trailing newline included when non-empty).
pub fn trace_jsonl(spans: &[SpanEvent], audits: &[AuthAudit]) -> String {
    let mut out = String::new();
    for ev in spans {
        out.push_str(&span_to_json(ev));
        out.push('\n');
    }
    for a in audits {
        out.push_str(&audit_to_json(a));
        out.push('\n');
    }
    out
}

/// Serialises spans as a Chrome trace-event JSON document loadable in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
///
/// Mapping: every trace becomes one "thread" (tid = trace id) in a
/// single process, every span a complete event (`ph: "X"`) with
/// microsecond timestamps, attributes in `args`. A metadata record
/// names each trace's row after its root span.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"echoimage\"}}",
    );
    // One thread-name row per trace, labelled by its root span.
    let mut seen: Vec<u64> = Vec::new();
    for ev in spans {
        if ev.parent == 0 && !seen.contains(&ev.trace) {
            seen.push(ev.trace);
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"trace {} · {}\"}}}}",
                ev.trace,
                ev.trace,
                escape_json(ev.name)
            );
        }
    }
    for ev in spans {
        let ts_us = ev.start_ns as f64 / 1_000.0;
        let dur_us = (ev.dur_ns as f64 / 1_000.0).max(0.001);
        let mut args = format!("\"seq\":{},\"lidx\":{}", ev.seq, ev.lidx);
        for (key, value) in &ev.attrs {
            let _ = write!(args, ",\"{}\":{}", escape_json(key), attr_json(value));
        }
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"echoimage\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
            escape_json(ev.name),
            ev.trace,
            ts_us,
            dur_us,
            args
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Rewrites a dotted metric name into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots and every other invalid character
/// become `_`; a leading digit gets a `_` prefix.
pub fn prometheus_sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label *value* for the Prometheus text exposition format:
/// backslash, double quote, and newline are escaped; everything else
/// passes through verbatim (the format is UTF-8).
pub fn prometheus_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format (version 0.0.4): one `# HELP`/`# TYPE` pair per metric,
/// counters as `counter`, gauges as `gauge`, and latency histograms as
/// native Prometheus histograms with **cumulative** `_bucket{le="…"}`
/// series (bounds in nanoseconds), a `+Inf` bucket, `_sum` and
/// `_count`. Metric names are sanitised with
/// [`prometheus_sanitize_name`]; output is sorted by name, so equal
/// registry states render byte-identically.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = prometheus_sanitize_name(name);
        let _ = writeln!(out, "# HELP {n} Event counter `{}`.", escape_json(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = prometheus_sanitize_name(name);
        let _ = writeln!(out, "# HELP {n} Level gauge `{}`.", escape_json(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for h in &snap.histograms {
        let n = format!("{}_ns", prometheus_sanitize_name(&h.name));
        let _ = writeln!(
            out,
            "# HELP {n} Latency histogram `{}` (nanoseconds).",
            escape_json(&h.name)
        );
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.buckets.iter().enumerate() {
            cumulative += count;
            match BUCKET_BOUNDS_NS.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum_ns);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

fn window_series(out: &mut String, snap: &WindowSnapshot) {
    let tenant = snap
        .tenant
        .map_or_else(|| "global".to_string(), |t| t.to_string());
    let t = prometheus_escape_label(&tenant);
    let _ = writeln!(out, "echo_tenant_epoch{{tenant=\"{t}\"}} {}", snap.epoch);
    let _ = writeln!(
        out,
        "echo_tenant_decisions_total{{tenant=\"{t}\"}} {}",
        snap.cum.decisions
    );
    let _ = writeln!(
        out,
        "echo_tenant_accepted_total{{tenant=\"{t}\"}} {}",
        snap.cum.accepted
    );
    for (label, &count) in REJECT_LABELS.iter().zip(snap.cum.rejects.iter()) {
        let _ = writeln!(
            out,
            "echo_tenant_rejects_total{{tenant=\"{t}\",kind=\"{}\"}} {count}",
            prometheus_escape_label(label)
        );
    }
    if let Some(drift) = snap.drift {
        let _ = writeln!(
            out,
            "echo_tenant_drift{{tenant=\"{t}\"}} {}",
            prom_f64(drift)
        );
    }
    for (span, w) in ROLLUP_SPANS.iter().zip(snap.windows.iter()) {
        let _ = writeln!(
            out,
            "echo_tenant_qps{{tenant=\"{t}\",window=\"{span}\"}} {}",
            prom_f64(w.qps)
        );
    }
    // Quantiles over the full retained window (64 epochs).
    let wide = &snap.windows[ROLLUP_SPANS.len() - 1];
    for q in [0.5, 0.99] {
        if let Some(m) = wide.margins.quantile(q) {
            let _ = writeln!(
                out,
                "echo_tenant_gate_margin{{tenant=\"{t}\",quantile=\"{q}\"}} {}",
                prom_f64(m)
            );
        }
        if let Some(ns) = wide.lat.quantile_ns(q) {
            let _ = writeln!(
                out,
                "echo_tenant_latency_ns{{tenant=\"{t}\",quantile=\"{q}\"}} {ns}"
            );
        }
    }
}

/// Renders the global and per-tenant [`WindowSnapshot`]s as
/// tenant-labelled Prometheus series (the global window gets
/// `tenant="global"`): decision/accept/reject totals, per-span QPS
/// gauges, drift scores, and wide-window gate-margin / latency
/// quantiles.
pub fn prometheus_windows(global: &WindowSnapshot, tenants: &[WindowSnapshot]) -> String {
    let mut out = String::new();
    let help: [(&str, &str, &str); 7] = [
        (
            "echo_tenant_epoch",
            "gauge",
            "Current logical epoch number.",
        ),
        (
            "echo_tenant_decisions_total",
            "counter",
            "Authentication decisions since window creation.",
        ),
        (
            "echo_tenant_accepted_total",
            "counter",
            "Accepted decisions since window creation.",
        ),
        (
            "echo_tenant_rejects_total",
            "counter",
            "Rejected decisions by kind since window creation.",
        ),
        (
            "echo_tenant_drift",
            "gauge",
            "PSI drift of live gate margins vs the enrolment reference.",
        ),
        (
            "echo_tenant_qps",
            "gauge",
            "Decisions per second over the trailing window (epochs).",
        ),
        (
            "echo_tenant_gate_margin",
            "gauge",
            "Gate-margin quantiles over the retained window.",
        ),
    ];
    for (name, kind, text) in help {
        let _ = writeln!(out, "# HELP {name} {text}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }
    let _ = writeln!(
        out,
        "# HELP echo_tenant_latency_ns End-to-end latency quantiles over the retained window."
    );
    let _ = writeln!(out, "# TYPE echo_tenant_latency_ns gauge");
    window_series(&mut out, global);
    for snap in tenants {
        window_series(&mut out, snap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, span: u64, parent: u64, name: &'static str) -> SpanEvent {
        SpanEvent {
            trace,
            span,
            parent,
            name,
            lidx: 0,
            start_ns: 1_500,
            dur_ns: 2_000,
            seq: 0,
            attrs: vec![
                ("beeps", AttrValue::U64(3)),
                ("hit", AttrValue::Bool(true)),
                ("margin", AttrValue::F64(-0.5)),
            ],
        }
    }

    #[test]
    fn span_jsonl_line_is_wellformed() {
        let line = span_to_json(&span(1, 0xabc, 0, "root"));
        assert!(line.starts_with("{\"type\":\"span\""));
        assert!(line.contains("\"parent\":null"));
        assert!(line.contains("\"span\":\"0000000000000abc\""));
        assert!(line.contains("\"attrs\":{\"beeps\":3,\"hit\":true,\"margin\":-0.5}"));
        assert_eq!(line.matches('"').count() % 2, 0);
    }

    #[test]
    fn audit_jsonl_line_round_trips_reason() {
        let audit = AuthAudit {
            trace: 2,
            seq: 9,
            tenant: Some(4),
            claimed_user: None,
            beeps: 3,
            votes: vec![(1, 1), (4, 2)],
            votes_needed: 2,
            best_gate_margin: None,
            channels: 6,
            degraded_mask: 0b101,
            retry_index: 1,
            verdict: AuthVerdict::Rejected,
            reject_kind: crate::audit::RejectKind::NoMajority,
            reject_reason: "weird \"quoted\" reason".to_string(),
            spatial_coherence: Some(0.25),
        };
        let line = audit_to_json(&audit);
        assert!(line.contains("\"tenant\":4"));
        assert!(line.contains("\"claimed_user\":null"));
        assert!(line.contains("\"votes\":[[1,1],[4,2]]"));
        assert!(line.contains("\"best_gate_margin\":null"));
        assert!(line.contains("\"degraded_mask\":5"));
        assert!(line.contains("\"reject_kind\":\"no_majority\""));
        assert!(line.contains("\"spatial_coherence\":0.25"));
        assert!(line.contains("weird \\\"quoted\\\" reason"));
    }

    #[test]
    fn overloaded_verdict_serialises_distinctly() {
        let audit = AuthAudit {
            trace: 3,
            seq: 1,
            tenant: None,
            claimed_user: Some(9),
            beeps: 1,
            votes: vec![],
            votes_needed: 1,
            best_gate_margin: None,
            channels: 0,
            degraded_mask: 0,
            retry_index: 0,
            verdict: AuthVerdict::Overloaded,
            reject_kind: crate::audit::RejectKind::Overloaded,
            reject_reason: "overloaded: tenant 9 queue full (4/4)".to_string(),
            spatial_coherence: None,
        };
        let line = audit_to_json(&audit);
        assert!(line.contains("\"tenant\":null"));
        assert!(line.contains("\"verdict\":\"overloaded\""));
        assert!(line.contains("\"accepted_user\":null"));
        assert!(line.contains("\"reject_kind\":\"overloaded\""));
        assert!(line.contains("\"spatial_coherence\":null"));
        assert!(line.contains("queue full"));
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("echoimage-write-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        write_atomic(&path, b"{\"a\":1}\n").unwrap();
        write_atomic(&path, b"{\"a\":2}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":2}\n");
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0, "temporary files must not survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Torn-write regression: a failed export must leave the previous
    /// complete file untouched — never a truncated or half-replaced one.
    #[test]
    fn write_atomic_failure_preserves_previous_contents() {
        let dir = std::env::temp_dir().join("echoimage-write-atomic-fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let old = b"{\"type\":\"audit\",\"seq\":1}\n";
        write_atomic(&path, old).unwrap();
        // The temp file is created next to the destination; making the
        // destination a *directory* forces the final rename to fail
        // after the bytes were already written — the worst-case torn
        // moment for a non-atomic writer.
        let blocked = dir.join("blocked.jsonl");
        std::fs::create_dir_all(&blocked).unwrap();
        // Seed the would-be destination's directory form with a marker
        // file so we can verify nothing inside it was disturbed either.
        std::fs::write(blocked.join("marker"), b"x").unwrap();
        assert!(write_atomic(&blocked, b"new contents").is_err());
        assert_eq!(std::fs::read(blocked.join("marker")).unwrap(), b"x");
        // And the original file is still byte-identical.
        assert_eq!(std::fs::read(&path).unwrap(), old);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prometheus_text_renders_types_and_cumulative_buckets() {
        use crate::snapshot::HistogramSnapshot;
        let mut buckets = vec![0u64; BUCKET_BOUNDS_NS.len() + 1];
        (buckets[0], buckets[1]) = (2, 3);
        *buckets.last_mut().unwrap() = 1; // one overflow observation
        let snap = MetricsSnapshot {
            enabled: true,
            counters: vec![("auth.attempts".into(), 7)],
            gauges: vec![("serve.queue_depth".into(), -2)],
            histograms: vec![HistogramSnapshot {
                name: "serve.e2e".into(),
                count: 6,
                sum_ns: 12_345,
                min_ns: Some(500),
                max_ns: Some(11_000_000_000),
                buckets,
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE auth_attempts counter"));
        assert!(text.contains("auth_attempts 7"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth -2"));
        assert!(text.contains("# TYPE serve_e2e_ns histogram"));
        assert!(text.contains("serve_e2e_ns_bucket{le=\"1000\"} 2"));
        assert!(
            text.contains("serve_e2e_ns_bucket{le=\"5000\"} 5"),
            "cumulative"
        );
        assert!(text.contains("serve_e2e_ns_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("serve_e2e_ns_sum 12345"));
        assert!(text.contains("serve_e2e_ns_count 6"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
    }

    #[test]
    fn prometheus_name_and_label_rules() {
        assert_eq!(prometheus_sanitize_name("serve.p99_ns"), "serve_p99_ns");
        assert_eq!(prometheus_sanitize_name("9lives"), "_9lives");
        assert_eq!(prometheus_sanitize_name("a b\"c"), "a_b_c");
        assert_eq!(prometheus_escape_label("plain"), "plain");
        assert_eq!(prometheus_escape_label("a\\b"), "a\\\\b");
        assert_eq!(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prometheus_escape_label("two\nlines"), "two\\nlines");
    }

    #[test]
    fn prometheus_windows_labels_tenants() {
        let _guard = crate::unit_test_lock();
        crate::window::reset_windows();
        crate::window::set_epoch_len(2);
        let audit = AuthAudit {
            trace: 0,
            seq: 0,
            tenant: Some(7),
            claimed_user: None,
            beeps: 3,
            votes: vec![],
            votes_needed: 2,
            best_gate_margin: Some(0.2),
            channels: 6,
            degraded_mask: 0,
            retry_index: 0,
            verdict: AuthVerdict::Accepted { user_id: 1 },
            reject_kind: crate::audit::RejectKind::None,
            reject_reason: String::new(),
            spatial_coherence: None,
        };
        for _ in 0..4 {
            crate::window::observe_decision(7, &audit);
            crate::window::observe_latency(7, 2_000);
        }
        let (global, tenants) = crate::window::snapshot_windows();
        let text = prometheus_windows(&global, &tenants);
        assert!(text.contains("# TYPE echo_tenant_drift gauge"));
        assert!(text.contains("echo_tenant_decisions_total{tenant=\"global\"} 4"));
        assert!(text.contains("echo_tenant_decisions_total{tenant=\"7\"} 4"));
        assert!(text.contains("echo_tenant_accepted_total{tenant=\"7\"} 4"));
        assert!(text.contains("echo_tenant_rejects_total{tenant=\"7\",kind=\"no_majority\"} 0"));
        assert!(text.contains("echo_tenant_gate_margin{tenant=\"7\",quantile=\"0.5\"}"));
        assert!(text.contains("echo_tenant_latency_ns{tenant=\"7\",quantile=\"0.99\"}"));
        crate::window::reset_windows();
    }

    #[test]
    fn chrome_export_contains_complete_events() {
        let spans = vec![
            span(1, 0x10, 0, "root"),
            span(1, 0x20, 0x10, "stage.imaging"),
        ];
        let doc = chrome_trace_json(&spans);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"stage.imaging\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("thread_name"));
        assert!(doc.trim_end().ends_with("]}"));
    }
}
