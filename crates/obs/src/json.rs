//! The one JSON string escaper every exporter in this crate shares.
//!
//! The metrics snapshot, the trace JSONL writer and the Chrome
//! trace-event writer all hand-roll their JSON (the workspace's vendored
//! `serde_json` stub has no generic `Value`), so they must agree on how
//! a string becomes a JSON string literal. Keeping the escaper here —
//! public, shared, and unit-tested — is what makes a metric or span
//! name containing `"` or `\` emit *valid* JSON everywhere instead of
//! only in the exporters that remembered to escape.

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Covers the two mandatory escapes (`"`, `\`), the common
/// whitespace controls, and the rest of the C0 range as `\u00XX`.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null` rather than corrupting the document.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `Display` for f64 prints the shortest round-trip decimal,
        // which is deterministic for a given bit pattern.
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape_json("stage.imaging"), "stage.imaging");
        assert_eq!(escape_json(""), "");
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json(r#"\""#), r#"\\\""#);
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape_json("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape_json("\u{0}\u{1f}"), "\\u0000\\u001f");
    }

    #[test]
    fn escaped_name_survives_a_json_document() {
        // The exact failure mode the escaper exists for: a name with a
        // quote must still produce a parseable key.
        let name = r#"weird"name\with\controls"#;
        let doc = format!("{{\"{}\": 1}}", escape_json(name));
        // Every interior `"` is escaped and every `\` doubled, so the
        // only bare quotes left are the key's two delimiters.
        assert_eq!(doc, r#"{"weird\"name\\with\\controls": 1}"#);
        let bare_quotes = doc
            .char_indices()
            .filter(|&(i, c)| c == '"' && (i == 0 || doc.as_bytes()[i - 1] != b'\\'))
            .count();
        assert_eq!(bare_quotes, 2);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
    }
}
