//! Per-attempt flight recorder: trace ids, hierarchical spans, and a
//! bounded ring buffer with deterministic logical sequence numbers.
//!
//! # Model
//!
//! A *trace* is one top-level unit of work — a beep/auth attempt, an
//! eval batch, an enrolment run. Trace ids are small serial integers
//! minted from a process-global counter by [`root_span`]. Every other
//! span is a child created through [`TraceCtx::child`] /
//! [`TraceCtx::child_at`]; span ids are *derived by hashing*
//! `(parent id, name, logical index)`, never by consuming global
//! state, so a subtree built by eight worker threads gets exactly the
//! ids the serial run would produce.
//!
//! # Determinism contract
//!
//! Wall-clock fields (`start_ns`, `dur_ns`) are machine-dependent and
//! excluded from the contract. Everything else — the set of spans,
//! their parent/child structure, names, logical indices, attributes,
//! and the logical sequence numbers assigned by [`take_spans`] — is
//! bit-identical across `ECHOIMAGE_THREADS=1/0` for the same workload,
//! provided (a) root spans are minted from the coordinating thread
//! (parallel workers receive a `TraceCtx` and derive children), and
//! (b) the ring buffer does not overflow mid-trace (eviction order is
//! arrival order, which is scheduler-dependent; the
//! `trace.events_dropped` counter exposes any overflow).
//!
//! Sequence numbers are *logical*, not temporal: [`take_spans`]
//! canonicalises the drained events into a depth-first walk of each
//! trace tree with siblings ordered by `(logical index, name)` and
//! numbers the nodes in walk order. Two runs that build the same tree
//! therefore report the same sequence numbers no matter how their
//! threads interleaved.
//!
//! # Cost when off
//!
//! Tracing is off by default. [`root_span`] then reduces to one relaxed
//! atomic load returning a dead span; dead contexts produce dead
//! children for free, and dead spans skip attribute pushes and record
//! nothing on drop.

use crate::registry::collecting;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Capacity of the span ring buffer. At ~120 bytes per event this
/// bounds recorder memory to a few MiB; a full-protocol eval run emits
/// on the order of 10³–10⁴ spans, so overflow indicates either a
/// pathological workload or a forgotten [`take_spans`] drain.
pub const TRACE_RING_CAPACITY: usize = 65_536;

/// Capacity of the audit ring buffer (see [`crate::audit`]). Audits are
/// one record per authentication decision, far sparser than spans.
pub const AUDIT_RING_CAPACITY: usize = 8_192;

/// Master switch for span tracing, independent of the metrics registry
/// switch: metrics default on, tracing defaults off (opt-in via
/// `--trace-out` or [`set_trace_enabled`]).
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Sample 1-in-N root traces; 0 and 1 both mean "every trace".
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);

/// Next trace serial. Starts at 1 so trace id 0 can mean "untraced".
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Enables or disables span tracing. Disabled (the default) reduces
/// every trace call site to a single relaxed flag load.
pub fn set_trace_enabled(enabled: bool) {
    TRACE_ON.store(enabled, Ordering::Relaxed);
}

/// Whether span tracing is currently enabled (tracing also requires the
/// global registry switch, see [`crate::set_enabled`]).
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed) && collecting()
}

/// Keeps 1-in-`n` traces, decided deterministically on the trace id:
/// trace serial `t` is sampled iff `(t - 1) % n == 0` (so sampling
/// 1-in-4 keeps traces 1, 5, 9, …). Sampled-out roots still consume a
/// serial, which keeps trace ids stable across sampling rates. `0` and
/// `1` both mean "keep every trace".
pub fn set_trace_sampling(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// Current 1-in-N sampling rate.
pub fn trace_sampling() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed).max(1)
}

fn sampled(trace: u64) -> bool {
    let n = SAMPLE_EVERY.load(Ordering::Relaxed);
    n <= 1 || (trace - 1).is_multiple_of(n)
}

/// Process-wide monotonic epoch: all span timestamps are nanoseconds
/// since the first trace event of the process, which keeps them small
/// and lets exporters subtract nothing.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// 64-bit splitmix finaliser — the id mixer. Bijective, so distinct
/// inputs stay distinct.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives a child span id from its parent id, stage name, and logical
/// index. Pure function of logical structure — no clocks, no counters —
/// which is what makes span ids thread-count independent. Forced
/// nonzero because 0 means "no parent".
fn derive_span_id(parent: u64, name: &str, lidx: u64) -> u64 {
    let mut h = fnv1a64(name.as_bytes());
    h ^= mix64(parent);
    h = h.wrapping_add(mix64(lidx.wrapping_add(0x5EED)));
    let id = mix64(h);
    if id == 0 {
        1
    } else {
        id
    }
}

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

/// One completed span, as drained by [`take_spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Trace serial this span belongs to.
    pub trace: u64,
    /// Derived span id (see [`derive_span_id`]); nonzero.
    pub span: u64,
    /// Parent span id, or 0 for the trace root.
    pub parent: u64,
    /// Stage name (static by construction).
    pub name: &'static str,
    /// Logical index distinguishing same-name siblings (beep index,
    /// job index, retry index, …).
    pub lidx: u64,
    /// Start, nanoseconds since the process trace epoch. Wall-clock:
    /// excluded from the determinism contract.
    pub start_ns: u64,
    /// Duration in nanoseconds. Wall-clock: excluded from the contract.
    pub dur_ns: u64,
    /// Logical sequence number: position of this span in the canonical
    /// depth-first walk of its trace tree (root = 0). Assigned by
    /// [`take_spans`]; 0 in the raw ring.
    pub seq: u64,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct Ring {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            dropped: 0,
        })
    })
}

fn push_event(ev: SpanEvent) {
    let overflowed = {
        let mut ring = ring().lock().unwrap();
        let overflowed = ring.events.len() >= TRACE_RING_CAPACITY;
        if overflowed {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
        overflowed
    };
    if overflowed {
        // Counter bumped outside the ring lock; the count is advisory
        // (overflow already voids the determinism contract).
        crate::counter!("trace.events_dropped").inc();
    }
}

/// Number of events evicted from the ring since the last
/// [`reset_traces`]. Nonzero means the determinism contract is void
/// for the drained window.
pub fn trace_events_dropped() -> u64 {
    ring().lock().unwrap().dropped
}

/// A lightweight handle identifying "where in which trace am I".
/// `Copy`, 16 bytes, cheap to thread through call stacks and closures.
/// A context with `trace == 0` is *dead*: children derived from it are
/// free no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    trace: u64,
    span: u64,
}

impl TraceCtx {
    /// The dead context: spans derived from it record nothing.
    pub const fn none() -> Self {
        TraceCtx { trace: 0, span: 0 }
    }

    /// Trace id, or 0 when dead.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Whether spans derived from this context will record.
    pub fn is_live(&self) -> bool {
        self.trace != 0
    }

    /// Opens a child span named `name` with logical index 0. Use
    /// [`TraceCtx::child_at`] whenever same-name siblings can exist.
    pub fn child(&self, name: &'static str) -> TraceSpan {
        self.child_at(name, 0)
    }

    /// Opens a child span named `name` with logical index `lidx`.
    /// Same-name siblings must use distinct indices (beep index, job
    /// index, retry number) — the index both disambiguates the derived
    /// span id and fixes canonical sibling order.
    pub fn child_at(&self, name: &'static str, lidx: u64) -> TraceSpan {
        if self.trace == 0 {
            return TraceSpan::dead();
        }
        TraceSpan {
            ctx: TraceCtx {
                trace: self.trace,
                span: derive_span_id(self.span, name, lidx),
            },
            parent: self.span,
            name,
            lidx,
            start_ns: now_ns(),
            attrs: Vec::new(),
            live: true,
        }
    }
}

/// An open span. Records itself into the ring buffer on drop (RAII, so
/// early returns and `?` propagation are covered). Attribute setters
/// take `&mut self`; on a dead span they are no-ops.
#[derive(Debug)]
pub struct TraceSpan {
    ctx: TraceCtx,
    parent: u64,
    name: &'static str,
    lidx: u64,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
    live: bool,
}

impl TraceSpan {
    fn dead() -> Self {
        TraceSpan {
            ctx: TraceCtx::none(),
            parent: 0,
            name: "",
            lidx: 0,
            start_ns: 0,
            attrs: Vec::new(),
            live: false,
        }
    }

    /// The context for opening children of this span.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Whether this span will record on drop.
    pub fn is_live(&self) -> bool {
        self.live
    }

    fn push_attr(&mut self, key: &'static str, value: AttrValue) {
        if self.live {
            self.attrs.push((key, value));
        }
    }

    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.push_attr(key, AttrValue::U64(value));
    }

    pub fn attr_i64(&mut self, key: &'static str, value: i64) {
        self.push_attr(key, AttrValue::I64(value));
    }

    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        self.push_attr(key, AttrValue::F64(value));
    }

    pub fn attr_bool(&mut self, key: &'static str, value: bool) {
        self.push_attr(key, AttrValue::Bool(value));
    }

    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        self.push_attr(key, AttrValue::Str(value.to_string()));
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end = now_ns();
        push_event(SpanEvent {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent,
            name: self.name,
            lidx: self.lidx,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            seq: 0,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Mints a new trace and opens its root span.
///
/// Must be called from the coordinating thread, never from inside a
/// parallel region — trace serials come from a global counter, so
/// concurrent minting would make ids scheduler-dependent. Parallel
/// workers receive the root's [`TraceCtx`] and derive children instead.
///
/// With tracing disabled this is a single relaxed load returning a dead
/// span and *no* serial is consumed; with sampling active, sampled-out
/// roots consume a serial but return a dead span.
pub fn root_span(name: &'static str) -> TraceSpan {
    if !TRACE_ON.load(Ordering::Relaxed) || !collecting() {
        return TraceSpan::dead();
    }
    let trace = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    if !sampled(trace) {
        return TraceSpan::dead();
    }
    TraceSpan {
        ctx: TraceCtx {
            trace,
            span: derive_span_id(0, name, trace),
        },
        parent: 0,
        name,
        lidx: 0,
        start_ns: now_ns(),
        attrs: Vec::new(),
        live: true,
    }
}

/// Drains all completed spans, canonicalised.
///
/// Canonicalisation groups events by trace, rebuilds each parent/child
/// tree, walks it depth-first with siblings ordered by
/// `(lidx, name, span id)`, and assigns [`SpanEvent::seq`] from the
/// walk position. Events whose parent is absent from the drained set
/// (including every true root, parent 0) start their own walk, ordered
/// among themselves like siblings. The returned vector is sorted by
/// `(trace, seq)`.
pub fn take_spans() -> Vec<SpanEvent> {
    let drained: Vec<SpanEvent> = {
        let mut ring = ring().lock().unwrap();
        ring.events.drain(..).collect()
    };
    canonicalize(drained)
}

fn canonicalize(events: Vec<SpanEvent>) -> Vec<SpanEvent> {
    use std::collections::{BTreeMap, HashMap, HashSet};

    // Group events per trace, preserving arrival order only as a
    // last-resort tiebreak (never needed when the lidx discipline is
    // followed).
    let mut by_trace: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for ev in events {
        by_trace.entry(ev.trace).or_default().push(ev);
    }

    let mut out = Vec::new();
    for (_, mut group) in by_trace {
        let present: HashSet<u64> = group.iter().map(|e| e.span).collect();
        // Deterministic sibling order, independent of arrival order.
        group.sort_by(|a, b| (a.lidx, a.name, a.span).cmp(&(b.lidx, b.name, b.span)));
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (i, ev) in group.iter().enumerate() {
            if ev.parent != 0 && present.contains(&ev.parent) {
                children.entry(ev.parent).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        // Iterative DFS; push children in reverse so the first sibling
        // pops first.
        let mut order: Vec<usize> = Vec::with_capacity(group.len());
        let mut stack: Vec<usize> = roots.into_iter().rev().collect();
        while let Some(i) = stack.pop() {
            order.push(i);
            if let Some(kids) = children.get(&group[i].span) {
                for &k in kids.iter().rev() {
                    stack.push(k);
                }
            }
        }
        let mut seq_of: Vec<u64> = vec![0; group.len()];
        for (seq, &i) in order.iter().enumerate() {
            seq_of[i] = seq as u64;
        }
        let mut trace_events: Vec<SpanEvent> = group;
        for (i, ev) in trace_events.iter_mut().enumerate() {
            ev.seq = seq_of[i];
        }
        trace_events.sort_by_key(|e| e.seq);
        out.extend(trace_events);
    }
    out
}

/// Clears the span ring, the audit buffer, and the trace serial counter
/// so the next [`root_span`] mints trace 1 again. Test/tool hook —
/// unrelated to the metrics [`crate::reset`].
pub fn reset_traces() {
    {
        let mut ring = ring().lock().unwrap();
        ring.events.clear();
        ring.dropped = 0;
    }
    crate::audit::reset_audits();
    NEXT_TRACE.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Armed(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for Armed {
        fn drop(&mut self) {
            set_trace_enabled(false);
            set_trace_sampling(1);
            reset_traces();
        }
    }

    fn armed() -> Armed {
        let guard = crate::unit_test_lock();
        set_trace_enabled(true);
        set_trace_sampling(1);
        reset_traces();
        Armed(guard)
    }

    #[test]
    fn disabled_tracing_records_nothing_and_mints_no_serial() {
        let _g = armed();
        set_trace_enabled(false);
        let root = root_span("work");
        assert!(!root.is_live());
        let mut child = root.ctx().child("sub");
        child.attr_u64("k", 1);
        drop(child);
        drop(root);
        set_trace_enabled(true);
        assert!(take_spans().is_empty());
        // The next live root must still be trace 1.
        let r = root_span("work");
        assert_eq!(r.ctx().trace_id(), 1);
    }

    #[test]
    fn span_tree_gets_canonical_sequence_numbers() {
        let _g = armed();
        {
            let root = root_span("attempt");
            let ctx = root.ctx();
            // Close children out of logical order on purpose.
            let b = ctx.child_at("beep", 1);
            let a = ctx.child_at("beep", 0);
            let inner = a.ctx().child("filter");
            drop(inner);
            drop(b);
            drop(a);
        }
        let spans = take_spans();
        let names: Vec<(&str, u64, u64)> = spans.iter().map(|s| (s.name, s.lidx, s.seq)).collect();
        assert_eq!(
            names,
            vec![
                ("attempt", 0, 0),
                ("beep", 0, 1),
                ("filter", 0, 2),
                ("beep", 1, 3),
            ]
        );
        // Parent links survive canonicalisation.
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, spans[0].span);
        assert_eq!(spans[2].parent, spans[1].span);
        assert_eq!(spans[3].parent, spans[0].span);
    }

    #[test]
    fn span_ids_are_pure_functions_of_structure() {
        let _g = armed();
        let build = || {
            let root = root_span("attempt");
            let ctx = root.ctx();
            drop(ctx.child_at("beep", 2));
            drop(root);
            let mut spans = take_spans();
            reset_traces();
            spans.sort_by_key(|s| s.seq);
            spans
                .iter()
                .map(|s| (s.trace, s.span, s.parent))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sampling_keeps_one_in_n_by_trace_serial() {
        let _g = armed();
        set_trace_sampling(4);
        let mut live = Vec::new();
        for _ in 0..8 {
            let r = root_span("attempt");
            if r.is_live() {
                live.push(r.ctx().trace_id());
            }
        }
        assert_eq!(live, vec![1, 5]);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace == 1 || s.trace == 5));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = armed();
        {
            let root = root_span("flood");
            let ctx = root.ctx();
            for i in 0..(TRACE_RING_CAPACITY as u64 + 10) {
                drop(ctx.child_at("tick", i));
            }
        }
        assert!(trace_events_dropped() >= 10);
        let spans = take_spans();
        assert!(spans.len() <= TRACE_RING_CAPACITY);
    }

    #[test]
    fn attrs_preserve_insertion_order() {
        let _g = armed();
        {
            let root = root_span("attempt");
            let mut c = root.ctx().child("stage");
            c.attr_u64("beeps", 3);
            c.attr_bool("degraded", false);
            c.attr_f64("margin", -0.25);
            c.attr_str("verdict", "rejected");
        }
        let spans = take_spans();
        let stage = spans.iter().find(|s| s.name == "stage").unwrap();
        let keys: Vec<&str> = stage.attrs.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["beeps", "degraded", "margin", "verdict"]);
        assert_eq!(stage.attrs[2].1, AttrValue::F64(-0.25));
    }
}
