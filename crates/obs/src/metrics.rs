//! The three metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All of them are plain atomics with `Relaxed` ordering — metric reads
//! never synchronise with each other, a snapshot is only guaranteed to
//! observe every event that *happened-before* the snapshot call (which
//! the pipeline guarantees by joining its workers before reporting).

use crate::registry::collecting;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Histogram bucket upper bounds in nanoseconds (inclusive), a coarse
/// log ladder from 1µs to 10s. One extra overflow bucket catches
/// everything above the last bound.
pub const BUCKET_BOUNDS_NS: [u64; 16] = [
    1_000,          // 1µs
    5_000,          // 5µs
    10_000,         // 10µs
    50_000,         // 50µs
    100_000,        // 100µs
    500_000,        // 500µs
    1_000_000,      // 1ms
    5_000_000,      // 5ms
    10_000_000,     // 10ms
    50_000_000,     // 50ms
    100_000_000,    // 100ms
    500_000_000,    // 500ms
    1_000_000_000,  // 1s
    2_500_000_000,  // 2.5s
    5_000_000_000,  // 5s
    10_000_000_000, // 10s
];

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one to the counter (no-op while the registry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if collecting() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A settable signed level (cache occupancy, configured thread count).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if collecting() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative; no-op while disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if collecting() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket latency histogram over nanosecond observations.
///
/// Buckets are bounded by [`BUCKET_BOUNDS_NS`] plus one overflow bucket;
/// `count`/`sum`/`min`/`max` are tracked alongside so snapshots can
/// report a mean without walking buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    pub(crate) const fn new() -> Self {
        // `[AtomicU64::new(0); N]` needs Copy; use an inline-const block.
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKET_BOUNDS_NS.len() + 1],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds (no-op while the
    /// registry is disabled).
    pub fn observe_ns(&self, ns: u64) {
        if !collecting() {
            return;
        }
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed nanoseconds.
    #[inline]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Smallest observation, or `None` before the first one.
    pub fn min_ns(&self) -> Option<u64> {
        let v = self.min_ns.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// Largest observation, or `None` before the first one.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max_ns.load(Ordering::Relaxed))
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> [u64; BUCKET_BOUNDS_NS.len() + 1] {
        let mut out = [0u64; BUCKET_BOUNDS_NS.len() + 1];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}
