//! Authentication audit log: one structured record per auth decision.
//!
//! Where spans answer "where did the time go", the audit log answers
//! "why was this attempt accepted or rejected": per-user vote counts,
//! the best gate margin the SVDD ensemble produced, the degraded
//! channel mask, the retry index, and a human-readable reject reason
//! that is non-empty on *every* rejection.
//!
//! Unlike span tracing (opt-in, see [`crate::trace`]), auditing rides
//! the metrics master switch: it is on by default and disabled together
//! with everything else by [`crate::set_enabled`]`(false)`. Audits are
//! one small record per decision — orders of magnitude sparser than
//! spans — so default-on costs nothing measurable, and it means tools
//! like the `fault_sweep` experiment can inspect decisions without any
//! tracing flags.
//!
//! Determinism: audit contents (including the global decision sequence
//! number) are bit-identical across thread counts because every
//! audit-emitting path in the workspace records from the coordinating
//! thread, never inside a parallel region.

use crate::registry::collecting;
use crate::trace::AUDIT_RING_CAPACITY;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Why an attempt was rejected, as a machine-matchable class. The
/// free-text [`AuthAudit::reject_reason`] carries the details; this
/// field is what dashboards, experiments, and the attack gate switch
/// on — string-matching reject prose is how audit pipelines rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectKind {
    /// Not rejected (the attempt was accepted).
    None,
    /// The capture failed screening before any classification —
    /// degraded channels, malformed train, or a pipeline error.
    CaptureScreen,
    /// The replay signature tripped: inter-channel spatial coherence
    /// of the body-echo window was above the live ceiling, i.e. every
    /// microphone heard the *same* waveform — a point source, not a
    /// scatterer cloud. [`AuthAudit::spatial_coherence`] holds the
    /// measured value.
    ReplaySignature,
    /// The SVDD spoofer gate rejected every beep: no enrolled user's
    /// gate accepted a single feature vector.
    SpooferGate,
    /// Some beeps were accepted but no candidate reached the strict
    /// majority.
    NoMajority,
    /// Shed by a serving-layer admission queue before scoring.
    Overloaded,
}

impl RejectKind {
    /// A short stable label for JSON artefacts and dashboards.
    pub fn label(&self) -> &'static str {
        match self {
            RejectKind::None => "none",
            RejectKind::CaptureScreen => "capture_screen",
            RejectKind::ReplaySignature => "replay_signature",
            RejectKind::SpooferGate => "spoofer_gate",
            RejectKind::NoMajority => "no_majority",
            RejectKind::Overloaded => "overloaded",
        }
    }
}

/// The outcome of one authentication decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthVerdict {
    /// The attempt authenticated as the given enrolled user id.
    Accepted { user_id: u64 },
    /// The attempt was rejected (see [`AuthAudit::reject_reason`]).
    Rejected,
    /// The attempt was shed before classification because an admission
    /// queue was full — a serving-layer reject distinct from a
    /// biometric one: the sample was never scored, and the caller
    /// should back off and retry rather than treat it as a spoofer
    /// verdict (see [`AuthAudit::reject_reason`] for the queue that
    /// overflowed).
    Overloaded,
}

/// One authentication decision, end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct AuthAudit {
    /// Trace id of the attempt, or 0 when the attempt was untraced.
    pub trace: u64,
    /// Global decision sequence number, assigned at record time.
    pub seq: u64,
    /// Serving tenant the decision belongs to, when known. Core
    /// pipelines leave it `None`; the serving layer wraps decision
    /// paths in a [`tenant_scope`] so every audit emitted underneath —
    /// including deep inside `echoimage-core` — is stamped at record
    /// time. Tenanted audits additionally feed the per-tenant windows
    /// in [`crate::window`].
    pub tenant: Option<u64>,
    /// The subject the caller claims to be, when known (experiment
    /// harnesses know ground truth; a real device would not).
    pub claimed_user: Option<u64>,
    /// Beeps in the probe train.
    pub beeps: u64,
    /// Per-user accepting-beep counts, sorted by user id. Only users
    /// with at least one accepting beep appear.
    pub votes: Vec<(u64, u64)>,
    /// Accepting beeps required for a verdict (strict majority).
    pub votes_needed: u64,
    /// Best (maximum) gate margin over all beeps and gates:
    /// `decision_value - threshold`. `None` when no feature was scored
    /// (e.g. the capture was rejected before classification).
    pub best_gate_margin: Option<f64>,
    /// Channels in the capture before any excision.
    pub channels: u64,
    /// Bitmask of excised channels (bit `i` = mic `i` excised by the
    /// health screen); 0 for a clean capture. Channels ≥ 64 saturate
    /// into bit 63.
    pub degraded_mask: u64,
    /// Retry index of this attempt (0 = first try).
    pub retry_index: u64,
    /// The decision.
    pub verdict: AuthVerdict,
    /// The reject class; [`RejectKind::None`] exactly when accepted.
    pub reject_kind: RejectKind,
    /// Why the attempt was rejected; empty exactly when accepted.
    pub reject_reason: String,
    /// Peak inter-channel spatial coherence of the body-echo window,
    /// when the spatial (anti-replay) check ran on this attempt.
    /// `None` when the check was disabled or the path never saw raw
    /// channels (e.g. the feature-level serving entry point).
    pub spatial_coherence: Option<f64>,
}

fn audits() -> &'static Mutex<VecDeque<AuthAudit>> {
    static AUDITS: OnceLock<Mutex<VecDeque<AuthAudit>>> = OnceLock::new();
    AUDITS.get_or_init(|| Mutex::new(VecDeque::new()))
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TENANT_SCOPE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII guard for [`tenant_scope`]; restores the previous scope (if
/// any) on drop, so scopes nest.
pub struct TenantScope {
    prev: Option<u64>,
}

impl Drop for TenantScope {
    fn drop(&mut self) {
        TENANT_SCOPE.set(self.prev);
    }
}

/// Marks every audit recorded on this thread until the guard drops as
/// belonging to `tenant`. This is how the serving layer attributes
/// decisions emitted deep inside `echoimage-core` — which knows nothing
/// about tenants — without threading an id through every pipeline
/// signature. An explicit `audit.tenant` set by the caller wins over
/// the scope.
///
/// Determinism: the serving layer only decides on its single batcher
/// thread, so scope-stamped audits inherit the audit log's
/// cross-thread-count bit-identity.
#[must_use = "the scope ends when the guard drops"]
pub fn tenant_scope(tenant: u64) -> TenantScope {
    let prev = TENANT_SCOPE.replace(Some(tenant));
    TenantScope { prev }
}

/// Records one decision. No-op while the registry is disabled. The
/// record's `seq` field is overwritten with the next global decision
/// serial; a `None` `tenant` field is stamped from the ambient
/// [`tenant_scope`], and tenanted records feed the per-tenant windows
/// ([`crate::window::observe_decision`]). Oldest records are evicted
/// past [`AUDIT_RING_CAPACITY`].
pub fn record_audit(mut audit: AuthAudit) {
    if !collecting() {
        return;
    }
    audit.seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    if audit.tenant.is_none() {
        audit.tenant = TENANT_SCOPE.get();
    }
    if let Some(tenant) = audit.tenant {
        crate::window::observe_decision(tenant, &audit);
    }
    let mut buf = audits().lock().unwrap();
    if buf.len() >= AUDIT_RING_CAPACITY {
        buf.pop_front();
    }
    buf.push_back(audit);
}

/// Drains all buffered audit records in decision order.
pub fn take_audits() -> Vec<AuthAudit> {
    let mut buf = audits().lock().unwrap();
    let mut out: Vec<AuthAudit> = buf.drain(..).collect();
    out.sort_by_key(|a| a.seq);
    out
}

/// Clears the audit buffer and decision serial (also invoked by
/// [`crate::trace::reset_traces`]).
pub fn reset_audits() {
    audits().lock().unwrap().clear();
    NEXT_SEQ.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(reason: &str) -> AuthAudit {
        AuthAudit {
            trace: 7,
            seq: 0,
            tenant: None,
            claimed_user: Some(3),
            beeps: 4,
            votes: vec![(3, 3)],
            votes_needed: 3,
            best_gate_margin: Some(0.125),
            channels: 6,
            degraded_mask: 0b1,
            retry_index: 0,
            verdict: if reason.is_empty() {
                AuthVerdict::Accepted { user_id: 3 }
            } else {
                AuthVerdict::Rejected
            },
            reject_kind: if reason.is_empty() {
                RejectKind::None
            } else {
                RejectKind::NoMajority
            },
            reject_reason: reason.to_string(),
            spatial_coherence: None,
        }
    }

    #[test]
    fn records_drain_in_decision_order_with_serial_seq() {
        let _guard = crate::unit_test_lock();
        reset_audits();
        record_audit(sample(""));
        record_audit(sample("no majority"));
        let drained = take_audits();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 1);
        assert_eq!(drained[1].seq, 2);
        assert_eq!(drained[1].reject_reason, "no majority");
        assert!(take_audits().is_empty());
        reset_audits();
    }

    #[test]
    fn tenant_scope_stamps_and_nests() {
        let _guard = crate::unit_test_lock();
        reset_audits();
        crate::window::reset_windows();
        {
            let _outer = tenant_scope(11);
            record_audit(sample(""));
            {
                let _inner = tenant_scope(22);
                record_audit(sample(""));
            }
            record_audit(sample(""));
        }
        record_audit(sample("")); // unscoped
        let mut explicit = sample("");
        explicit.tenant = Some(99);
        {
            // An explicit tenant wins over the ambient scope.
            let _scope = tenant_scope(11);
            record_audit(explicit);
        }
        let drained = take_audits();
        let tenants: Vec<Option<u64>> = drained.iter().map(|a| a.tenant).collect();
        assert_eq!(tenants, vec![Some(11), Some(22), Some(11), None, Some(99)]);
        // Scoped records fed the per-tenant windows; the unscoped one
        // did not.
        assert_eq!(crate::window::snapshot_tenant(11).unwrap().cum.decisions, 2);
        assert_eq!(
            crate::window::snapshot_global().cum.decisions,
            4,
            "global window sees tenanted decisions only"
        );
        crate::window::reset_windows();
        reset_audits();
    }

    #[test]
    fn disabled_registry_records_no_audits() {
        let _guard = crate::unit_test_lock();
        reset_audits();
        crate::set_enabled(false);
        record_audit(sample(""));
        crate::set_enabled(true);
        assert!(take_audits().is_empty());
        reset_audits();
    }
}
