//! Point-in-time registry snapshots and the hand-rolled JSON exporter.
//!
//! The exporter is deliberately dependency-free (the workspace's
//! vendored `serde_json` stub has no generic `Value`); string escaping
//! goes through the shared [`crate::json::escape_json`] so metric names
//! containing `"` or `\` serialise identically here and in the trace
//! exporters.

use crate::json::escape_json as escape;
use crate::metrics::BUCKET_BOUNDS_NS;
use crate::registry::{is_enabled, registry};

/// One histogram frozen at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: Option<u64>,
    pub max_ns: Option<u64>,
    /// Counts per bucket; `buckets[i]` covers observations ≤
    /// [`BUCKET_BOUNDS_NS`]`[i]`, and the final entry is the overflow
    /// bucket (bound reported as `null` in JSON).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds, or `None` before the first one.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }
}

/// Every registered metric frozen at one point in time, sorted by name
/// within each kind.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub enabled: bool,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a [`MetricsSnapshot`] of the process-wide registry.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: Vec<(String, u64)> = registry()
        .counters()
        .into_iter()
        .map(|(name, c)| (name.to_string(), c.get()))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut gauges: Vec<(String, i64)> = registry()
        .gauges()
        .into_iter()
        .map(|(name, g)| (name.to_string(), g.get()))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));

    let mut histograms: Vec<HistogramSnapshot> = registry()
        .histograms()
        .into_iter()
        .map(|(name, h)| HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum_ns(),
            min_ns: h.min_ns(),
            max_ns: h.max_ns(),
            buckets: h.bucket_counts().to_vec(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    MetricsSnapshot {
        enabled: is_enabled(),
        counters,
        gauges,
        histograms,
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

impl MetricsSnapshot {
    /// Value of the named counter at snapshot time, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the named gauge at snapshot time, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The named histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialises the snapshot as pretty-printed JSON. Counters and
    /// gauges become name→value objects; each histogram carries count,
    /// sum/min/max/mean in ns, and a `buckets` array of
    /// `{"le_ns": bound-or-null, "count": n}` rows. Key order is sorted
    /// by metric name, so two snapshots of the same registry state
    /// serialise byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));

        out.push_str("  \"counters\": {");
        let rows: Vec<String> = self
            .counters
            .iter()
            .map(|(name, v)| format!("\n    \"{}\": {v}", escape(name)))
            .collect();
        if rows.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str(&rows.join(","));
            out.push_str("\n  },\n");
        }

        out.push_str("  \"gauges\": {");
        let rows: Vec<String> = self
            .gauges
            .iter()
            .map(|(name, v)| format!("\n    \"{}\": {v}", escape(name)))
            .collect();
        if rows.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str(&rows.join(","));
            out.push_str("\n  },\n");
        }

        out.push_str("  \"histograms\": [");
        let rows: Vec<String> = self.histograms.iter().map(histogram_json).collect();
        if rows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str(&rows.join(","));
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let bound = BUCKET_BOUNDS_NS
                .get(i)
                .map_or_else(|| "null".into(), |b| b.to_string());
            format!("{{\"le_ns\": {bound}, \"count\": {count}}}")
        })
        .collect();
    let mean = h
        .mean_ns()
        .map_or_else(|| "null".into(), |m| format!("{m:.1}"));
    format!(
        "\n    {{\n      \"name\": \"{}\",\n      \"count\": {},\n      \
         \"sum_ns\": {},\n      \"min_ns\": {},\n      \"max_ns\": {},\n      \
         \"mean_ns\": {mean},\n      \"buckets\": [{}]\n    }}",
        escape(&h.name),
        h.count,
        h.sum_ns,
        opt_u64(h.min_ns),
        opt_u64(h.max_ns),
        buckets.join(", ")
    )
}
