//! Point-in-time registry snapshots and the hand-rolled JSON exporter.
//!
//! The exporter is deliberately dependency-free (the workspace's
//! vendored `serde_json` stub has no generic `Value`); string escaping
//! goes through the shared [`crate::json::escape_json`] so metric names
//! containing `"` or `\` serialise identically here and in the trace
//! exporters.

use crate::json::escape_json as escape;
use crate::metrics::BUCKET_BOUNDS_NS;
use crate::registry::{is_enabled, registry};

/// One histogram frozen at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: Option<u64>,
    pub max_ns: Option<u64>,
    /// Counts per bucket; `buckets[i]` covers observations ≤
    /// [`BUCKET_BOUNDS_NS`]`[i]`, and the final entry is the overflow
    /// bucket (bound reported as `null` in JSON).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds, or `None` before the first one.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, or `None`
    /// while the histogram is empty or `q` is out of range.
    ///
    /// The estimate walks the cumulative bucket counts to the bucket
    /// containing the requested rank and interpolates linearly inside
    /// it, with the bucket edges tightened to the observed `min`/`max`
    /// so single-bucket histograms report sensible values instead of a
    /// whole log-ladder decade. Coarse by construction — the ladder has
    /// 16 buckets — but monotone in `q` and good enough for the
    /// p50/p99/p999 the serving layer reports.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            let before = seen;
            seen += in_bucket;
            if seen < rank {
                continue;
            }
            // Nominal bucket edges from the ladder; the overflow bucket
            // is open-ended above the last bound.
            let lo = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
            let hi = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            // Tighten to what was actually observed.
            let lo = self.min_ns.map_or(lo, |m| lo.max(m));
            let hi = self.max_ns.map_or(hi, |m| hi.min(m)).max(lo);
            let frac = (rank - before) as f64 / in_bucket as f64;
            return Some(lo + ((hi - lo) as f64 * frac).round() as u64);
        }
        self.max_ns
    }
}

/// Every registered metric frozen at one point in time, sorted by name
/// within each kind.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub enabled: bool,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a [`MetricsSnapshot`] of the process-wide registry.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: Vec<(String, u64)> = registry()
        .counters()
        .into_iter()
        .map(|(name, c)| (name.to_string(), c.get()))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut gauges: Vec<(String, i64)> = registry()
        .gauges()
        .into_iter()
        .map(|(name, g)| (name.to_string(), g.get()))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));

    let mut histograms: Vec<HistogramSnapshot> = registry()
        .histograms()
        .into_iter()
        .map(|(name, h)| HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum_ns(),
            min_ns: h.min_ns(),
            max_ns: h.max_ns(),
            buckets: h.bucket_counts().to_vec(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    MetricsSnapshot {
        enabled: is_enabled(),
        counters,
        gauges,
        histograms,
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

impl MetricsSnapshot {
    /// Value of the named counter at snapshot time, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the named gauge at snapshot time, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The named histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialises the snapshot as pretty-printed JSON. Counters and
    /// gauges become name→value objects; each histogram carries count,
    /// sum/min/max/mean in ns, and a `buckets` array of
    /// `{"le_ns": bound-or-null, "count": n}` rows. Key order is sorted
    /// by metric name, so two snapshots of the same registry state
    /// serialise byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));

        out.push_str("  \"counters\": {");
        let rows: Vec<String> = self
            .counters
            .iter()
            .map(|(name, v)| format!("\n    \"{}\": {v}", escape(name)))
            .collect();
        if rows.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str(&rows.join(","));
            out.push_str("\n  },\n");
        }

        out.push_str("  \"gauges\": {");
        let rows: Vec<String> = self
            .gauges
            .iter()
            .map(|(name, v)| format!("\n    \"{}\": {v}", escape(name)))
            .collect();
        if rows.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str(&rows.join(","));
            out.push_str("\n  },\n");
        }

        out.push_str("  \"histograms\": [");
        let rows: Vec<String> = self.histograms.iter().map(histogram_json).collect();
        if rows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str(&rows.join(","));
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let bound = BUCKET_BOUNDS_NS
                .get(i)
                .map_or_else(|| "null".into(), |b| b.to_string());
            format!("{{\"le_ns\": {bound}, \"count\": {count}}}")
        })
        .collect();
    let mean = h
        .mean_ns()
        .map_or_else(|| "null".into(), |m| format!("{m:.1}"));
    format!(
        "\n    {{\n      \"name\": \"{}\",\n      \"count\": {},\n      \
         \"sum_ns\": {},\n      \"min_ns\": {},\n      \"max_ns\": {},\n      \
         \"mean_ns\": {mean},\n      \"buckets\": [{}]\n    }}",
        escape(&h.name),
        h.count,
        h.sum_ns,
        opt_u64(h.min_ns),
        opt_u64(h.max_ns),
        buckets.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(buckets: Vec<u64>, min_ns: u64, max_ns: u64) -> HistogramSnapshot {
        let count = buckets.iter().sum();
        HistogramSnapshot {
            name: "t".into(),
            count,
            sum_ns: 0,
            min_ns: (count > 0).then_some(min_ns),
            max_ns: (count > 0).then_some(max_ns),
            buckets,
        }
    }

    #[test]
    fn quantile_of_empty_or_bad_q_is_none() {
        let h = hist(vec![0; BUCKET_BOUNDS_NS.len() + 1], 0, 0);
        assert_eq!(h.quantile_ns(0.5), None);
        let mut b = vec![0; BUCKET_BOUNDS_NS.len() + 1];
        b[0] = 1;
        let h = hist(b, 500, 500);
        assert_eq!(h.quantile_ns(-0.1), None);
        assert_eq!(h.quantile_ns(1.5), None);
    }

    #[test]
    fn quantile_is_monotone_and_bracketed_by_min_max() {
        // 10 obs ≤1µs, 80 in (1µs, 5µs], 10 in (5µs, 10µs].
        let mut b = vec![0u64; BUCKET_BOUNDS_NS.len() + 1];
        (b[0], b[1], b[2]) = (10, 80, 10);
        let h = hist(b, 800, 9_000);
        let p50 = h.quantile_ns(0.50).unwrap();
        let p99 = h.quantile_ns(0.99).unwrap();
        let p999 = h.quantile_ns(0.999).unwrap();
        assert!(p50 >= 800 && p999 <= 9_000, "{p50} {p999}");
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        // The median rank lands in the middle bucket.
        assert!((1_000..=5_000).contains(&p50), "{p50}");
    }

    #[test]
    fn single_bucket_histogram_stays_inside_observed_range() {
        let mut b = vec![0u64; BUCKET_BOUNDS_NS.len() + 1];
        b[6] = 100; // all obs in (500µs, 1ms]
        let h = hist(b, 700_000, 800_000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile_ns(q).unwrap();
            assert!((700_000..=800_000).contains(&v), "q={q} → {v}");
        }
    }

    #[test]
    fn overflow_bucket_quantile_uses_observed_max() {
        let mut b = vec![0u64; BUCKET_BOUNDS_NS.len() + 1];
        *b.last_mut().unwrap() = 4; // beyond the 10s ladder top
        let h = hist(b, 11_000_000_000, 12_000_000_000);
        let v = h.quantile_ns(0.99).unwrap();
        assert!((11_000_000_000..=12_000_000_000).contains(&v), "{v}");
    }
}
