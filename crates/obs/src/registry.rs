//! The process-wide metric registry.
//!
//! Metrics are registered on first use, keyed by `&'static str` name,
//! and live for the rest of the process (`Box::leak`) so call sites can
//! hold `&'static` handles with no reference counting on the hot path.

use crate::metrics::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Global collection switch. `true` by default; [`set_enabled`]`(false)`
/// turns every metric operation into a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric writes should be applied right now.
#[inline]
pub(crate) fn collecting() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables collection process-wide. Disabling does not
/// clear already-recorded values (use [`reset`] for that); it stops
/// further recording and makes spans skip the clock.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether collection is currently enabled.
pub fn is_enabled() -> bool {
    collecting()
}

/// The process-wide registry: three name→metric lists, one per kind.
///
/// Lists are plain `Mutex<Vec<…>>` — registration happens once per call
/// site (the macros cache the returned handle), so the lock is cold.
pub struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
    histograms: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    gauges: Mutex::new(Vec::new()),
    histograms: Mutex::new(Vec::new()),
};

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    &REGISTRY
}

fn find_or_insert<T>(
    list: &Mutex<Vec<(&'static str, &'static T)>>,
    name: &'static str,
    make: impl FnOnce() -> T,
) -> &'static T {
    let mut list = list.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, metric)) = list.iter().find(|(n, _)| *n == name) {
        return metric;
    }
    let metric: &'static T = Box::leak(Box::new(make()));
    list.push((name, metric));
    metric
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        find_or_insert(&self.counters, name, Counter::new)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        find_or_insert(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        find_or_insert(&self.histograms, name, Histogram::new)
    }

    pub(crate) fn counters(&self) -> Vec<(&'static str, &'static Counter)> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn gauges(&self) -> Vec<(&'static str, &'static Gauge)> {
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn histograms(&self) -> Vec<(&'static str, &'static Histogram)> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Zeroes every registered metric (names stay registered). Test and
/// bench harnesses call this between workloads so counter assertions
/// see only their own events.
pub fn reset() {
    for (_, c) in REGISTRY.counters() {
        c.reset();
    }
    for (_, g) in REGISTRY.gauges() {
        g.reset();
    }
    for (_, h) in REGISTRY.histograms() {
        h.reset();
    }
}
