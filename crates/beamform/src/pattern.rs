//! Beam-pattern analysis.
//!
//! The paper's §V-A frequency-band argument rests on array theory: with
//! 4–7 cm microphone spacing, probing above ~3 kHz violates the spatial
//! sampling condition `d < λ/2` and grating lobes appear — directions
//! far from the steering direction that the array amplifies just as
//! strongly. This module computes beam patterns so that claim (and any
//! weight design) can be inspected quantitatively.

use crate::beamformer::das_weights;
use echo_array::{Direction, MicArray};
use echo_dsp::Complex;

/// The array's response to a far-field plane wave from `from`, given
/// weights designed for some look direction: `|wᴴ a(from)|`.
pub fn response(
    array: &MicArray,
    weights: &[Complex],
    from: Direction,
    f0: f64,
    speed_of_sound: f64,
) -> f64 {
    let a = array.steering_vector_with(from, f0, speed_of_sound);
    let g: Complex = weights
        .iter()
        .zip(a.iter())
        .map(|(w, am)| w.conj() * *am)
        .sum();
    g.abs()
}

/// An azimuth sweep of the beam pattern at fixed elevation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeamPattern {
    /// Azimuth samples, radians.
    pub azimuths: Vec<f64>,
    /// `|wᴴa|` response at each azimuth (1.0 = distortionless maximum).
    pub gains: Vec<f64>,
    /// The steering azimuth.
    pub look_azimuth: f64,
}

impl BeamPattern {
    /// Sweeps a delay-and-sum beam steered at `look` across azimuth at
    /// the look elevation.
    pub fn azimuth_sweep(
        array: &MicArray,
        look: Direction,
        f0: f64,
        speed_of_sound: f64,
        samples: usize,
    ) -> Self {
        let weights = das_weights(&array.steering_vector_with(look, f0, speed_of_sound));
        let azimuths: Vec<f64> = (0..samples)
            .map(|i| -std::f64::consts::PI + 2.0 * std::f64::consts::PI * i as f64 / samples as f64)
            .collect();
        let gains = azimuths
            .iter()
            .map(|&az| {
                response(
                    array,
                    &weights,
                    Direction::new(az, look.elevation()),
                    f0,
                    speed_of_sound,
                )
            })
            .collect();
        BeamPattern {
            azimuths,
            gains,
            look_azimuth: look.azimuth(),
        }
    }

    /// The largest response outside ±`exclusion` radians of the look
    /// azimuth — the worst sidelobe/grating-lobe level.
    pub fn worst_sidelobe(&self, exclusion: f64) -> f64 {
        self.azimuths
            .iter()
            .zip(self.gains.iter())
            .filter(|(&az, _)| angular_distance(az, self.look_azimuth) > exclusion)
            .map(|(_, &g)| g)
            .fold(0.0, f64::max)
    }

    /// Returns `true` when some off-look direction responds at ≥
    /// `threshold` of the look gain — the paper's grating-lobe
    /// condition ("as sensitive to waves from the directions of grating
    /// lobes as for the steering direction").
    pub fn has_grating_lobes(&self, threshold: f64) -> bool {
        self.worst_sidelobe(0.6) >= threshold * self.look_gain()
    }

    /// The response at (nearest to) the look azimuth.
    pub fn look_gain(&self) -> f64 {
        let (mut best, mut dist) = (1.0, f64::INFINITY);
        for (&az, &g) in self.azimuths.iter().zip(self.gains.iter()) {
            let d = angular_distance(az, self.look_azimuth);
            if d < dist {
                dist = d;
                best = g;
            }
        }
        best
    }

    /// −3 dB main-lobe width in radians (full width around the look
    /// azimuth where the gain stays above `look_gain/√2`).
    pub fn main_lobe_width(&self) -> f64 {
        let threshold = self.look_gain() / 2f64.sqrt();
        let look_idx = self
            .azimuths
            .iter()
            .enumerate()
            .min_by(|a, b| {
                angular_distance(*a.1, self.look_azimuth)
                    .total_cmp(&angular_distance(*b.1, self.look_azimuth))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let n = self.azimuths.len();
        let step = 2.0 * std::f64::consts::PI / n as f64;
        let mut width = step;
        // Walk outward in both directions while above threshold.
        let mut i = look_idx;
        loop {
            let next = (i + 1) % n;
            if self.gains[next] < threshold || next == look_idx {
                break;
            }
            width += step;
            i = next;
        }
        let mut i = look_idx;
        loop {
            let prev = (i + n - 1) % n;
            if self.gains[prev] < threshold || prev == look_idx {
                break;
            }
            width += step;
            i = prev;
        }
        width
    }
}

/// Smallest absolute angular difference on the circle.
fn angular_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(2.0 * std::f64::consts::PI);
    d.min(2.0 * std::f64::consts::PI - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    const C: f64 = 343.0;

    fn pattern(f0: f64) -> BeamPattern {
        let array = MicArray::respeaker_6();
        BeamPattern::azimuth_sweep(&array, Direction::new(FRAC_PI_2, FRAC_PI_2), f0, C, 720)
    }

    #[test]
    fn look_direction_is_distortionless() {
        let p = pattern(2_500.0);
        assert!(
            (p.look_gain() - 1.0).abs() < 1e-3,
            "look gain {}",
            p.look_gain()
        );
    }

    #[test]
    fn probing_band_is_free_of_grating_lobes() {
        // §V-A: at 2–3 kHz the 5 cm array must not have grating lobes.
        for f in [2_000.0, 2_500.0, 3_000.0] {
            let p = pattern(f);
            assert!(
                !p.has_grating_lobes(0.9),
                "{f} Hz: worst sidelobe {}",
                p.worst_sidelobe(0.6)
            );
        }
    }

    #[test]
    fn high_frequencies_grow_grating_lobes() {
        // Far above the d < λ/2 limit (λ/2 ⇔ ~3.4 kHz for 5 cm), strong
        // off-look lobes appear — the paper's reason for not using
        // inaudible >20 kHz probing.
        let p = pattern(8_000.0);
        assert!(
            p.has_grating_lobes(0.9),
            "worst sidelobe {} at 8 kHz",
            p.worst_sidelobe(0.6)
        );
    }

    #[test]
    fn sidelobes_worsen_with_frequency_beyond_limit() {
        let low = pattern(2_500.0).worst_sidelobe(0.6);
        let high = pattern(7_000.0).worst_sidelobe(0.6);
        assert!(high > low, "low {low} vs high {high}");
    }

    #[test]
    fn main_lobe_narrows_with_frequency() {
        let wide = pattern(1_000.0).main_lobe_width();
        let narrow = pattern(3_000.0).main_lobe_width();
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn angular_distance_wraps() {
        use std::f64::consts::PI;
        assert!((angular_distance(-PI + 0.1, PI - 0.1) - 0.2).abs() < 1e-12);
        assert!((angular_distance(0.0, 1.0) - 1.0).abs() < 1e-12);
    }
}
