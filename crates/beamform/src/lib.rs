//! Beamforming substrate for the EchoImage reproduction.
//!
//! The paper steers its microphone array with Minimum Variance
//! Distortionless Response (MVDR) beamforming (Eq. 8), both to estimate
//! the user's distance (§V-B) and to scan the virtual imaging plane
//! (§V-C). This crate provides:
//!
//! * [`cmatrix::CMatrix`] — small dense complex matrices with a
//!   Gauss–Jordan inverse (the 6×6 noise covariance of a smart-speaker
//!   array),
//! * [`covariance`] — spatial covariance estimation with diagonal
//!   loading,
//! * [`beamformer`] — delay-and-sum (baseline) and MVDR weight design
//!   plus application to multichannel analytic signals.
//!
//! # Example
//!
//! With an identity noise covariance, MVDR reduces to delay-and-sum:
//!
//! ```
//! use echo_array::{Direction, MicArray};
//! use echo_beamform::beamformer::{mvdr_weights, das_weights};
//! use echo_beamform::covariance::SpatialCovariance;
//!
//! let array = MicArray::respeaker_6();
//! let sv = array.steering_vector(Direction::front(), 2_500.0);
//! let cov = SpatialCovariance::identity(array.len());
//! let w_mvdr = mvdr_weights(&cov, &sv).unwrap();
//! let w_das = das_weights(&sv);
//! for (a, b) in w_mvdr.iter().zip(w_das.iter()) {
//!     assert!((*a - *b).abs() < 1e-9);
//! }
//! ```

pub mod beamformer;
pub mod cmatrix;
pub mod covariance;
pub mod eigen;
mod error;
pub mod music;
pub mod pattern;
pub mod subband;

pub use beamformer::{apply_weights, beamform_real, das_weights, mvdr_weights, MvdrDesigner};
pub use cmatrix::CMatrix;
pub use covariance::SpatialCovariance;
pub use error::BeamformError;
