//! Spatial covariance estimation.
//!
//! MVDR (paper Eq. 8) weights depend on `ρ_n`, the normalised covariance
//! matrix of the background noise across the M microphones. We estimate it
//! from noise-only snapshots (e.g. the quiet stretch before each beep),
//! normalise by the average per-channel power, and diagonally load it so
//! the inverse exists even for short observation windows.

use crate::cmatrix::CMatrix;
use crate::error::BeamformError;
use echo_dsp::Complex;

/// A normalised spatial covariance matrix with diagonal loading applied.
///
/// # Example
///
/// ```
/// use echo_beamform::SpatialCovariance;
///
/// // Identity covariance: spatially white noise.
/// let cov = SpatialCovariance::identity(6);
/// assert_eq!(cov.matrix().rows(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpatialCovariance {
    matrix: CMatrix,
}

/// Default diagonal loading factor, relative to the mean channel power.
pub const DEFAULT_LOADING: f64 = 1e-3;

impl SpatialCovariance {
    /// Spatially white covariance (the identity), appropriate when no
    /// noise-only observation is available.
    pub fn identity(m: usize) -> Self {
        SpatialCovariance {
            matrix: CMatrix::identity(m),
        }
    }

    /// Model-based covariance of a spherically isotropic (diffuse) noise
    /// field at frequency `f0`: `ρ_ij = sinc(2π f0 d_ij / c)` with `d_ij`
    /// the microphone spacing, plus `loading·I`.
    ///
    /// Unlike a covariance *estimated* from short noise snapshots, this
    /// matrix is deterministic, so the MVDR weights it produces (the
    /// classic superdirective beamformer) are identical from capture to
    /// capture — exactly what a biometric pipeline needs.
    pub fn isotropic(
        array: &echo_array::MicArray,
        f0: f64,
        speed_of_sound: f64,
        loading: f64,
    ) -> Self {
        let m = array.len();
        let k = 2.0 * std::f64::consts::PI * f0 / speed_of_sound;
        let mut r = CMatrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let d = array.position(i).distance_to(array.position(j));
                let x = k * d;
                let coh = if x.abs() < 1e-12 { 1.0 } else { x.sin() / x };
                r.set(i, j, Complex::from_real(coh));
            }
        }
        r.add_diagonal(loading.max(0.0));
        SpatialCovariance { matrix: r }
    }

    /// Estimates the covariance from multichannel analytic snapshots.
    ///
    /// `channels[m][n]` is sample `n` of microphone `m`. The estimate is
    /// `R = (1/N) Σ_n x[n] x[n]ᴴ`, normalised so its mean diagonal is 1,
    /// then loaded with `loading·I` (relative to the normalised scale).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty, channels have unequal lengths, or
    /// there are no snapshots.
    pub fn from_snapshots(channels: &[Vec<Complex>], loading: f64) -> Self {
        assert!(!channels.is_empty(), "need at least one channel");
        let m = channels.len();
        let n = channels[0].len();
        assert!(n > 0, "need at least one snapshot");
        assert!(
            channels.iter().all(|c| c.len() == n),
            "channels must have equal lengths"
        );

        let mut r = CMatrix::zeros(m, m);
        for t in 0..n {
            for (i, ci) in channels.iter().enumerate() {
                let xi = ci[t];
                for (j, cj) in channels.iter().enumerate() {
                    let v = r.get(i, j) + xi * cj[t].conj();
                    r.set(i, j, v);
                }
            }
        }
        r.scale(1.0 / n as f64);

        // Normalise so the mean diagonal power is 1 (the paper's ρ_n is a
        // *normalised* covariance). Degenerate all-zero input falls back
        // to identity scale.
        let mean_power = r.trace().re / m as f64;
        if mean_power > 0.0 {
            r.scale(1.0 / mean_power);
        }
        r.add_diagonal(loading.max(0.0));
        SpatialCovariance { matrix: r }
    }

    /// Like [`SpatialCovariance::from_snapshots`] with the default loading.
    pub fn from_snapshots_default(channels: &[Vec<Complex>]) -> Self {
        Self::from_snapshots(channels, DEFAULT_LOADING)
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// Number of channels M.
    pub fn num_channels(&self) -> usize {
        self.matrix.rows()
    }

    /// The inverse `ρ_n⁻¹` used by MVDR.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::SingularMatrix`] if inversion fails (only
    /// possible with zero loading and degenerate snapshots).
    pub fn inverse(&self) -> Result<CMatrix, BeamformError> {
        self.matrix.inverse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn white_noise_channels(m: usize, n: usize) -> Vec<Vec<Complex>> {
        // Deterministic pseudo-noise, decorrelated across channels.
        (0..m)
            .map(|ch| {
                (0..n)
                    .map(|t| {
                        let h = splitmix((ch as u64) << 32 | t as u64);
                        let x = (h & 0xFFFF_FFFF) as f64 / 4294967296.0 - 0.5;
                        let y = (h >> 32) as f64 / 4294967296.0 - 0.5;
                        Complex::new(x, y)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn estimate_is_hermitian_with_unit_mean_diagonal() {
        let ch = white_noise_channels(4, 512);
        let cov = SpatialCovariance::from_snapshots(&ch, 0.0);
        assert!(cov.matrix().is_hermitian(1e-9));
        let mean_diag = cov.matrix().trace().re / 4.0;
        assert!((mean_diag - 1.0).abs() < 1e-9);
    }

    #[test]
    fn white_noise_covariance_is_near_identity() {
        let ch = white_noise_channels(3, 8192);
        let cov = SpatialCovariance::from_snapshots(&ch, 0.0);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (cov.matrix().get(i, j).abs() - expect).abs() < 0.1,
                    "({i},{j}) = {}",
                    cov.matrix().get(i, j)
                );
            }
        }
    }

    #[test]
    fn coherent_channels_produce_rank_one_structure() {
        // All channels identical → fully correlated covariance.
        let base: Vec<Complex> = (0..256).map(|t| Complex::cis(t as f64 * 0.1)).collect();
        let ch = vec![base.clone(), base.clone(), base];
        let cov = SpatialCovariance::from_snapshots(&ch, 0.0);
        for i in 0..3 {
            for j in 0..3 {
                assert!((cov.matrix().get(i, j).abs() - 1.0).abs() < 1e-9);
            }
        }
        // Rank-1 without loading → singular.
        assert!(cov.inverse().is_err());
        // Loading rescues invertibility.
        let loaded = SpatialCovariance::from_snapshots(&ch, 1e-3);
        assert!(loaded.inverse().is_ok());
    }

    #[test]
    fn zero_snapshots_fall_back_to_loaded_zero() {
        let ch = vec![vec![Complex::ZERO; 16]; 3];
        let cov = SpatialCovariance::from_snapshots(&ch, 1e-3);
        // Pure loading: εI, invertible.
        assert!(cov.inverse().is_ok());
    }

    #[test]
    fn isotropic_model_is_deterministic_hermitian_and_invertible() {
        let arr = echo_array::MicArray::respeaker_6();
        let a = SpatialCovariance::isotropic(&arr, 2_500.0, 343.0, 0.05);
        let b = SpatialCovariance::isotropic(&arr, 2_500.0, 343.0, 0.05);
        assert_eq!(a, b);
        assert!(a.matrix().is_hermitian(1e-12));
        assert!(a.inverse().is_ok());
        // Unit diagonal plus loading.
        assert!((a.matrix().get(0, 0).re - 1.05).abs() < 1e-12);
        // Off-diagonal coherence below 1 and symmetric.
        let c01 = a.matrix().get(0, 1).re;
        assert!(c01 < 1.0 && c01 > -1.0);
        assert_eq!(a.matrix().get(1, 0).re, c01);
    }

    #[test]
    fn isotropic_coherence_decays_with_frequency() {
        let arr = echo_array::MicArray::respeaker_6();
        let lo = SpatialCovariance::isotropic(&arr, 500.0, 343.0, 0.0);
        let hi = SpatialCovariance::isotropic(&arr, 3_000.0, 343.0, 0.0);
        assert!(lo.matrix().get(0, 1).re > hi.matrix().get(0, 1).re);
    }

    #[test]
    fn identity_covariance_inverse_is_identity() {
        let cov = SpatialCovariance::identity(5);
        let inv = cov.inverse().unwrap();
        for i in 0..5 {
            assert!((inv.get(i, i) - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_channel_lengths_panic() {
        let ch = vec![vec![Complex::ZERO; 4], vec![Complex::ZERO; 5]];
        let _ = SpatialCovariance::from_snapshots(&ch, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_channels_panic() {
        let _ = SpatialCovariance::from_snapshots(&[], 0.0);
    }
}
