//! Eigendecomposition of Hermitian matrices via the cyclic Jacobi
//! method — small and robust, exactly right for the M×M (M ≈ 6) spatial
//! covariance matrices of a smart-speaker array.

use crate::cmatrix::CMatrix;
use echo_dsp::Complex;

/// An eigendecomposition `A = V·diag(λ)·Vᴴ` of a Hermitian matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order (real, since A is Hermitian).
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the matching eigenvectors.
    pub vectors: CMatrix,
}

/// Diagonalises a Hermitian matrix with cyclic complex Jacobi rotations.
///
/// # Panics
///
/// Panics if the matrix is not square or not Hermitian (tolerance 1e-8
/// relative to the largest entry).
pub fn eigh(a: &CMatrix) -> EigenDecomposition {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition needs a square matrix"
    );
    let n = a.rows();
    let scale = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| a.get(i, j).abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    assert!(
        a.is_hermitian(1e-8 * scale),
        "eigendecomposition needs a Hermitian matrix"
    );

    let mut m = a.clone();
    let mut v = CMatrix::identity(n);

    // Cyclic sweeps over the upper triangle.
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j).norm_sqr();
            }
        }
        if off.sqrt() < 1e-12 * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p).re;
                let aqq = m.get(q, q).re;
                // Phase-align: diag(1, e^{iφ}) makes the 2×2 block real.
                let phi = apq.arg();
                let b = apq.abs();
                // Real Jacobi rotation for [[app, b], [b, aqq]]: zeroing
                // the off-diagonal requires tan 2θ = −2b/(app − aqq).
                let mut theta = 0.5 * f64::atan2(-2.0 * b, app - aqq);
                // Keep the inner rotation (|θ| ≤ π/4) for convergence; a
                // ±π/2 shift preserves the zeroing property.
                if theta > std::f64::consts::FRAC_PI_4 {
                    theta -= std::f64::consts::FRAC_PI_2;
                } else if theta < -std::f64::consts::FRAC_PI_4 {
                    theta += std::f64::consts::FRAC_PI_2;
                }
                let c = theta.cos();
                let s = theta.sin();
                // U columns: [c, −s·e^{−iφ}]ᵀ and [s·e^{iφ}·…]. Build the
                // two complex coefficients of the unitary update:
                // col_p ← c·col_p + s·e^{−iφ}·col_q? Derive via U =
                // diag(1, e^{-iφ}) applied on the q side:
                let u_pq = Complex::from_polar(s, phi); // entry (p,q) of U
                let u_qp = Complex::from_polar(-s, -phi); // entry (q,p)
                                                          // Apply A ← Uᴴ A U on rows/cols p and q.
                                                          // First columns: A[:,p], A[:,q].
                for r in 0..n {
                    let arp = m.get(r, p);
                    let arq = m.get(r, q);
                    m.set(r, p, arp * c + arq * u_qp);
                    m.set(r, q, arp * u_pq + arq * c);
                }
                // Then rows (conjugate coefficients).
                for r in 0..n {
                    let apr = m.get(p, r);
                    let aqr = m.get(q, r);
                    m.set(p, r, apr * c + aqr * u_qp.conj());
                    m.set(q, r, apr * u_pq.conj() + aqr * c);
                }
                // Accumulate eigenvectors: V ← V U.
                for r in 0..n {
                    let vrp = v.get(r, p);
                    let vrq = v.get(r, q);
                    v.set(r, p, vrp * c + vrq * u_qp);
                    v.set(r, q, vrp * u_pq + vrq * c);
                }
            }
        }
    }

    // Extract (eigenvalue, eigenvector-column) pairs, sort descending.
    let mut pairs: Vec<(f64, Vec<Complex>)> = (0..n)
        .map(|j| {
            (
                m.get(j, j).re,
                (0..n).map(|i| v.get(i, j)).collect::<Vec<_>>(),
            )
        })
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));

    let values: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
    let mut vectors = CMatrix::zeros(n, n);
    for (j, (_, col)) in pairs.iter().enumerate() {
        for (i, &x) in col.iter().enumerate() {
            vectors.set(i, j, x);
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hermitian_from(v: &CMatrix, eigenvalues: &[f64]) -> CMatrix {
        // A = V diag(λ) Vᴴ.
        let n = eigenvalues.len();
        let mut d = CMatrix::zeros(n, n);
        for (i, &l) in eigenvalues.iter().enumerate() {
            d.set(i, i, Complex::from_real(l));
        }
        v.matmul(&d).matmul(&v.hermitian())
    }

    /// A deterministic unitary built from Jacobi-style rotations.
    fn test_unitary(n: usize) -> CMatrix {
        let mut v = CMatrix::identity(n);
        for p in 0..n {
            for q in p + 1..n {
                let theta = 0.3 + 0.1 * (p * n + q) as f64;
                let phi = 0.7 * (p + 2 * q) as f64;
                let c = theta.cos();
                let s = Complex::from_polar(theta.sin(), phi);
                let mut r = CMatrix::identity(n);
                r.set(p, p, Complex::from_real(c));
                r.set(q, q, Complex::from_real(c));
                r.set(p, q, s);
                r.set(q, p, -s.conj());
                v = v.matmul(&r);
            }
        }
        v
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = CMatrix::zeros(3, 3);
        a.set(0, 0, Complex::from_real(3.0));
        a.set(1, 1, Complex::from_real(1.0));
        a.set(2, 2, Complex::from_real(2.0));
        let e = eigh(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_constructed_spectrum() {
        let v = test_unitary(5);
        let eigenvalues = [9.0, 4.5, 2.0, 0.5, 0.1];
        let a = hermitian_from(&v, &eigenvalues);
        let e = eigh(&a);
        for (got, want) in e.values.iter().zip(eigenvalues.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        let v = test_unitary(4);
        let a = hermitian_from(&v, &[5.0, 3.0, 1.0, 0.2]);
        let e = eigh(&a);
        let mut d = CMatrix::zeros(4, 4);
        for (i, &l) in e.values.iter().enumerate() {
            d.set(i, i, Complex::from_real(l));
        }
        let back = e.vectors.matmul(&d).matmul(&e.vectors.hermitian());
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (back.get(i, j) - a.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    back.get(i, j),
                    a.get(i, j)
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let v = test_unitary(6);
        let a = hermitian_from(&v, &[6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        let e = eigh(&a);
        let gram = e.vectors.hermitian().matmul(&e.vectors);
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { Complex::ONE } else { Complex::ZERO };
                assert!((gram.get(i, j) - want).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let v = test_unitary(4);
        let a = hermitian_from(&v, &[7.0, 3.0, 1.5, 0.4]);
        let e = eigh(&a);
        for j in 0..4 {
            let col: Vec<Complex> = (0..4).map(|i| e.vectors.get(i, j)).collect();
            let av = a.matvec(&col);
            for i in 0..4 {
                let want = col[i] * e.values[j];
                assert!((av[i] - want).abs() < 1e-9, "λ{j} component {i}");
            }
        }
    }

    #[test]
    fn degenerate_eigenvalues_are_handled() {
        // Identity: all eigenvalues equal 1.
        let e = eigh(&CMatrix::identity(4));
        for l in &e.values {
            assert!((l - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn non_hermitian_input_panics() {
        let mut a = CMatrix::zeros(2, 2);
        a.set(0, 1, Complex::from_real(1.0));
        // a[1][0] left at 0 → not Hermitian.
        let _ = eigh(&a);
    }
}
