//! Beamformer weight design and application.
//!
//! Weights are applied to multichannel *analytic* signals:
//! `y[n] = Σ_m w_m* · x_m[n]` (`wᴴx`), so a distortionless design keeps a
//! plane wave from the look direction unscaled (`wᴴa = 1`).

use crate::cmatrix::CMatrix;
use crate::covariance::SpatialCovariance;
use crate::error::BeamformError;
use echo_dsp::hilbert::analytic_signal;
use echo_dsp::Complex;

/// Delay-and-sum weights `w = a/M` for steering vector `a`.
///
/// This is the conventional baseline the paper's MVDR design improves on.
pub fn das_weights(steering: &[Complex]) -> Vec<Complex> {
    let m = steering.len() as f64;
    steering.iter().map(|&a| a / m).collect()
}

/// MVDR weights (paper Eq. 8): `w = ρ_n⁻¹ p_s / (p_sᴴ ρ_n⁻¹ p_s)`.
///
/// # Errors
///
/// Returns [`BeamformError::SingularMatrix`] if the covariance cannot be
/// inverted, or [`BeamformError::DimensionMismatch`] when the steering
/// vector length differs from the covariance size.
///
/// # Example
///
/// ```
/// use echo_array::{Direction, MicArray};
/// use echo_beamform::{mvdr_weights, SpatialCovariance};
/// use echo_dsp::Complex;
///
/// let array = MicArray::respeaker_6();
/// let a = array.steering_vector(Direction::front(), 2_500.0);
/// let w = mvdr_weights(&SpatialCovariance::identity(6), &a).unwrap();
/// // Distortionless: wᴴ a = 1.
/// let gain: Complex = w.iter().zip(&a).map(|(w, a)| w.conj() * *a).sum();
/// assert!((gain - Complex::ONE).abs() < 1e-9);
/// ```
pub fn mvdr_weights(
    noise_cov: &SpatialCovariance,
    steering: &[Complex],
) -> Result<Vec<Complex>, BeamformError> {
    MvdrDesigner::new(noise_cov)?.weights(steering)
}

/// An MVDR weight designer with the covariance inverse precomputed.
///
/// Imaging sweeps a plane of thousands of cells against *one* noise
/// covariance; inverting it per cell dominates the sweep. `MvdrDesigner`
/// factors the inversion out: [`MvdrDesigner::new`] inverts once, then
/// [`MvdrDesigner::weights`] is a matrix–vector product per steering
/// vector. The weights are bit-identical to [`mvdr_weights`] for the
/// same covariance — the same inverse feeds the same arithmetic.
#[derive(Debug, Clone)]
pub struct MvdrDesigner {
    rinv: CMatrix,
}

impl MvdrDesigner {
    /// Inverts the noise covariance once for reuse across steering
    /// vectors.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::SingularMatrix`] if the covariance
    /// cannot be inverted.
    pub fn new(noise_cov: &SpatialCovariance) -> Result<Self, BeamformError> {
        Ok(MvdrDesigner {
            rinv: noise_cov.inverse()?,
        })
    }

    /// Number of channels the designer expects.
    pub fn num_channels(&self) -> usize {
        self.rinv.rows()
    }

    /// MVDR weights for one steering vector (paper Eq. 8).
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::DimensionMismatch`] when the steering
    /// vector length differs from the covariance size, or
    /// [`BeamformError::SingularMatrix`] when the distortionless
    /// denominator vanishes.
    pub fn weights(&self, steering: &[Complex]) -> Result<Vec<Complex>, BeamformError> {
        let m = self.rinv.rows();
        if steering.len() != m {
            return Err(BeamformError::DimensionMismatch {
                expected: m,
                actual: steering.len(),
            });
        }
        let rinv_a = self.rinv.matvec(steering);
        // Denominator p_sᴴ ρ⁻¹ p_s is real for Hermitian ρ.
        let denom: Complex = steering
            .iter()
            .zip(rinv_a.iter())
            .map(|(a, ra)| a.conj() * *ra)
            .sum();
        if denom.abs() < 1e-300 {
            return Err(BeamformError::SingularMatrix);
        }
        Ok(rinv_a.into_iter().map(|v| v / denom).collect())
    }
}

/// Applies beamformer weights to multichannel analytic signals:
/// `y[n] = Σ_m w_m* x_m[n]`.
///
/// # Panics
///
/// Panics if the number of channels differs from the number of weights or
/// channels have unequal lengths.
pub fn apply_weights(channels: &[Vec<Complex>], weights: &[Complex]) -> Vec<Complex> {
    assert_eq!(
        channels.len(),
        weights.len(),
        "channel/weight count mismatch"
    );
    assert!(!channels.is_empty(), "no channels to beamform");
    let n = channels[0].len();
    assert!(
        channels.iter().all(|c| c.len() == n),
        "channels must have equal lengths"
    );
    let mut out = vec![Complex::ZERO; n];
    for (ch, &w) in channels.iter().zip(weights.iter()) {
        let wc = w.conj();
        for (o, &x) in out.iter_mut().zip(ch.iter()) {
            *o += wc * x;
        }
    }
    out
}

/// Beamforms M real microphone signals: converts each channel to its
/// analytic signal, applies `weights`, and returns the real part.
///
/// This is the operation written `r̂_l(t)` in the paper (§V-B, §V-C).
///
/// # Panics
///
/// See [`apply_weights`].
pub fn beamform_real(channels: &[Vec<f64>], weights: &[Complex]) -> Vec<f64> {
    let analytic: Vec<Vec<Complex>> = channels.iter().map(|ch| analytic_signal(ch)).collect();
    apply_weights(&analytic, weights)
        .into_iter()
        .map(|v| v.re)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_array::{Direction, MicArray};
    use echo_dsp::SPEED_OF_SOUND;
    use std::f64::consts::{FRAC_PI_2, PI};

    /// Synthesises narrowband plane-wave snapshots from `dir` with
    /// amplitude `amp` at frequency `f0`.
    fn plane_wave(
        array: &MicArray,
        dir: Direction,
        f0: f64,
        amp: f64,
        n: usize,
        phase0: f64,
    ) -> Vec<Vec<Complex>> {
        let w0 = 2.0 * PI * f0;
        (0..array.len())
            .map(|m| {
                let tau = array.tdoa(m, dir, SPEED_OF_SOUND);
                (0..n)
                    .map(|t| {
                        let time = t as f64 / 48_000.0;
                        Complex::from_polar(amp, w0 * (time - tau) + phase0)
                    })
                    .collect()
            })
            .collect()
    }

    fn add_channels(a: &mut [Vec<Complex>], b: &[Vec<Complex>]) {
        for (ca, cb) in a.iter_mut().zip(b.iter()) {
            for (x, y) in ca.iter_mut().zip(cb.iter()) {
                *x += *y;
            }
        }
    }

    fn output_power(y: &[Complex]) -> f64 {
        y.iter().map(|v| v.norm_sqr()).sum::<f64>() / y.len() as f64
    }

    #[test]
    fn das_weights_sum_to_unity_gain() {
        let array = MicArray::respeaker_6();
        let a = array.steering_vector(Direction::front(), 2_500.0);
        let w = das_weights(&a);
        let g: Complex = w.iter().zip(&a).map(|(w, a)| w.conj() * *a).sum();
        assert!((g - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn mvdr_is_distortionless() {
        let array = MicArray::respeaker_6();
        let dir = Direction::new(1.1, 1.4);
        let a = array.steering_vector(dir, 2_500.0);
        // Non-trivial covariance: white + a bit of coherent interference.
        let mut ch = plane_wave(
            &array,
            Direction::new(2.5, FRAC_PI_2),
            2_500.0,
            1.0,
            256,
            0.3,
        );
        for (i, c) in ch.iter_mut().enumerate() {
            for (t, v) in c.iter_mut().enumerate() {
                let jitter = (((t * 31 + i * 17) % 97) as f64 / 97.0 - 0.5) * 0.6;
                *v += Complex::new(jitter, -jitter * 0.4);
            }
        }
        let cov = SpatialCovariance::from_snapshots(&ch, 1e-3);
        let w = mvdr_weights(&cov, &a).unwrap();
        let g: Complex = w.iter().zip(&a).map(|(w, a)| w.conj() * *a).sum();
        assert!((g - Complex::ONE).abs() < 1e-9, "gain = {g}");
    }

    #[test]
    fn mvdr_reduces_to_das_for_white_noise() {
        let array = MicArray::respeaker_6();
        let a = array.steering_vector(Direction::new(0.4, 1.0), 2_500.0);
        let w = mvdr_weights(&SpatialCovariance::identity(6), &a).unwrap();
        let das = das_weights(&a);
        for (x, y) in w.iter().zip(das.iter()) {
            assert!((*x - *y).abs() < 1e-10);
        }
    }

    #[test]
    fn mvdr_suppresses_interferer_better_than_das() {
        let array = MicArray::respeaker_6();
        let f0 = 2_500.0;
        let look = Direction::new(FRAC_PI_2, FRAC_PI_2);
        let interferer = Direction::new(FRAC_PI_2 + 1.6, FRAC_PI_2);
        let a = array.steering_vector(look, f0);

        // Noise-only observation: interferer + small white noise.
        let mut noise = plane_wave(&array, interferer, f0, 1.0, 512, 0.9);
        for (i, c) in noise.iter_mut().enumerate() {
            for (t, v) in c.iter_mut().enumerate() {
                let r1 = (((t * 131 + i * 313) % 1009) as f64 / 1009.0 - 0.5) * 0.2;
                let r2 = (((t * 419 + i * 97) % 1013) as f64 / 1013.0 - 0.5) * 0.2;
                *v += Complex::new(r1, r2);
            }
        }
        let cov = SpatialCovariance::from_snapshots(&noise, 1e-4);
        let w_mvdr = mvdr_weights(&cov, &a).unwrap();
        let w_das = das_weights(&a);

        // Test scene: desired signal + the same interferer.
        let mut scene = plane_wave(&array, look, f0, 1.0, 512, 0.0);
        let interf = plane_wave(&array, interferer, f0, 3.0, 512, 1.7);
        add_channels(&mut scene, &interf);

        // Interference-only residual after beamforming.
        let interf_only = plane_wave(&array, interferer, f0, 3.0, 512, 1.7);
        let res_mvdr = output_power(&apply_weights(&interf_only, &w_mvdr));
        let res_das = output_power(&apply_weights(&interf_only, &w_das));
        assert!(
            res_mvdr < res_das * 0.2,
            "MVDR residual {res_mvdr} not ≪ DAS residual {res_das}"
        );

        // And the desired signal still passes at unit gain.
        let desired = plane_wave(&array, look, f0, 1.0, 512, 0.0);
        let pass = output_power(&apply_weights(&desired, &w_mvdr));
        assert!((pass - 1.0).abs() < 0.05, "desired power {pass}");
    }

    #[test]
    fn designer_matches_mvdr_weights_bit_for_bit() {
        let array = MicArray::respeaker_6();
        let mut ch = plane_wave(&array, Direction::new(2.1, 0.9), 2_500.0, 1.0, 256, 0.5);
        for (i, c) in ch.iter_mut().enumerate() {
            for (t, v) in c.iter_mut().enumerate() {
                let jitter = (((t * 53 + i * 29) % 101) as f64 / 101.0 - 0.5) * 0.3;
                *v += Complex::new(jitter, jitter * 0.7);
            }
        }
        let cov = SpatialCovariance::from_snapshots(&ch, 1e-3);
        let designer = MvdrDesigner::new(&cov).unwrap();
        assert_eq!(designer.num_channels(), 6);
        for k in 0..8 {
            let dir = Direction::new(0.3 + 0.6 * k as f64, 1.1);
            let a = array.steering_vector(dir, 2_500.0);
            let w_direct = mvdr_weights(&cov, &a).unwrap();
            let w_cached = designer.weights(&a).unwrap();
            for (x, y) in w_direct.iter().zip(w_cached.iter()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let cov = SpatialCovariance::identity(6);
        let a = vec![Complex::ONE; 4];
        match mvdr_weights(&cov, &a) {
            Err(BeamformError::DimensionMismatch { expected, actual }) => {
                assert_eq!(expected, 6);
                assert_eq!(actual, 4);
            }
            other => panic!("expected dimension mismatch, got {other:?}"),
        }
    }

    #[test]
    fn beamform_real_passes_aligned_tone() {
        // All-equal channels with unit DAS weights return the tone.
        let n = 480;
        let tone: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * 2_500.0 * t as f64 / 48_000.0).sin())
            .collect();
        let channels = vec![tone.clone(); 4];
        let w = vec![Complex::from_real(0.25); 4];
        let y = beamform_real(&channels, &w);
        for (a, b) in y[40..n - 40].iter().zip(tone[40..].iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn apply_weights_checks_channel_count() {
        let ch = vec![vec![Complex::ZERO; 8]; 3];
        let _ = apply_weights(&ch, &[Complex::ONE; 2]);
    }
}
