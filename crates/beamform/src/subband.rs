//! Subband (frequency-domain) MVDR beamforming.
//!
//! The paper's pipeline applies one narrowband MVDR at the chirp's
//! centre frequency — a fine approximation for a 10 cm aperture, but the
//! probing chirp spans a full octave-third. This extension designs MVDR
//! weights *per STFT bin* across the probing band (each bin gets the
//! steering vector and isotropic-noise coherence at its own frequency),
//! processes the multichannel signal in the STFT domain and
//! overlap-adds back — the textbook wideband MVDR.

use crate::beamformer::mvdr_weights;
use crate::covariance::SpatialCovariance;
use crate::error::BeamformError;
use echo_array::{Direction, MicArray};
use echo_dsp::stft::{istft, stft_complex};
use echo_dsp::Complex;

/// A wideband beamformer with per-bin MVDR weights.
#[derive(Debug, Clone)]
pub struct SubbandBeamformer {
    fft_size: usize,
    hop: usize,
    sample_rate: f64,
    /// Per-bin weights; `None` outside the designed band (those bins are
    /// zeroed — the band-pass comes for free).
    weights: Vec<Option<Vec<Complex>>>,
}

impl SubbandBeamformer {
    /// Designs per-bin MVDR weights for `look` over `[f_lo, f_hi]`,
    /// using the spherically isotropic noise model at each bin frequency
    /// with diagonal loading `loading`.
    ///
    /// # Errors
    ///
    /// Returns a [`BeamformError`] if any bin's weight design fails.
    ///
    /// # Panics
    ///
    /// Panics if the band or STFT geometry is invalid.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's full STFT parameterisation
    pub fn isotropic_mvdr(
        array: &MicArray,
        look: Direction,
        f_lo: f64,
        f_hi: f64,
        sample_rate: f64,
        fft_size: usize,
        hop: usize,
        speed_of_sound: f64,
        loading: f64,
    ) -> Result<Self, BeamformError> {
        assert!(f_lo < f_hi, "band edges must satisfy f_lo < f_hi");
        assert!(fft_size > 0 && hop > 0, "invalid STFT geometry");
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let bins = fft_size / 2 + 1;
        let mut weights = Vec::with_capacity(bins);
        for k in 0..bins {
            let f = k as f64 * sample_rate / fft_size as f64;
            if f < f_lo || f > f_hi || f == 0.0 {
                weights.push(None);
                continue;
            }
            let cov = SpatialCovariance::isotropic(array, f, speed_of_sound, loading);
            let sv = array.steering_vector_with(look, f, speed_of_sound);
            weights.push(Some(mvdr_weights(&cov, &sv)?));
        }
        Ok(SubbandBeamformer {
            fft_size,
            hop,
            sample_rate,
            weights,
        })
    }

    /// The STFT size.
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// Number of bins carrying non-zero weights.
    pub fn active_bins(&self) -> usize {
        self.weights.iter().filter(|w| w.is_some()).count()
    }

    /// Sample rate the weights were designed for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Beamforms M real channels into one real output of the same
    /// length. Bins outside the designed band are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if channels are empty, ragged, or do not match the design's
    /// microphone count.
    pub fn process(&self, channels: &[Vec<f64>]) -> Vec<f64> {
        assert!(!channels.is_empty(), "no channels to beamform");
        let n = channels[0].len();
        assert!(channels.iter().all(|c| c.len() == n), "ragged channels");
        let m = self
            .weights
            .iter()
            .flatten()
            .next()
            .map(|w| w.len())
            .unwrap_or(0);
        assert_eq!(channels.len(), m, "channel count does not match the design");

        // Per-channel STFTs.
        let specs: Vec<Vec<Vec<Complex>>> = channels
            .iter()
            .map(|c| stft_complex(c, self.fft_size, self.hop))
            .collect();
        let frames = specs[0].len();
        let bins = self.fft_size / 2 + 1;

        // y[t][k] = Σ_m w_m*(k) · X_m[t][k].
        let mut out_frames = vec![vec![Complex::ZERO; bins]; frames];
        for (t, out_frame) in out_frames.iter_mut().enumerate() {
            for (k, out_bin) in out_frame.iter_mut().enumerate() {
                if let Some(w) = &self.weights[k] {
                    let mut acc = Complex::ZERO;
                    for (wm, spec) in w.iter().zip(specs.iter()) {
                        acc += wm.conj() * spec[t][k];
                    }
                    *out_bin = acc;
                }
            }
        }
        istft(&out_frames, self.fft_size, self.hop, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_dsp::chirp::LfmChirp;
    use echo_dsp::SPEED_OF_SOUND;
    use std::f64::consts::FRAC_PI_2;

    const FS: f64 = 48_000.0;

    /// Renders a broadband chirp plane wave from `dir` as per-mic delayed
    /// copies (true time delays — not the narrowband approximation).
    fn chirp_from(array: &MicArray, dir: Direction, amp: f64) -> Vec<Vec<f64>> {
        let c = LfmChirp::new(2_000.0, 3_000.0, 0.01, FS);
        let s = c.samples();
        let n = 2_048;
        (0..array.len())
            .map(|m| {
                let tau = array.tdoa(m, dir, SPEED_OF_SOUND) * FS;
                let mut ch = vec![0.0; n];
                echo_dsp::interp::add_delayed(&mut ch, &s, 512.0 + tau + 16.0, amp);
                ch
            })
            .collect()
    }

    fn band_energy(signal: &[f64]) -> f64 {
        signal.iter().map(|v| v * v).sum()
    }

    fn beamformer(look: Direction) -> SubbandBeamformer {
        SubbandBeamformer::isotropic_mvdr(
            &MicArray::respeaker_6(),
            look,
            2_000.0,
            3_000.0,
            FS,
            256,
            64,
            SPEED_OF_SOUND,
            0.05,
        )
        .unwrap()
    }

    #[test]
    fn look_direction_chirp_passes() {
        let array = MicArray::respeaker_6();
        let look = Direction::new(FRAC_PI_2, FRAC_PI_2);
        let bf = beamformer(look);
        let channels = chirp_from(&array, look, 1.0);
        let y = bf.process(&channels);
        // Output energy close to a single channel's energy (distortionless).
        let ratio = band_energy(&y) / band_energy(&channels[0]);
        assert!(ratio > 0.7 && ratio < 1.3, "pass ratio {ratio}");
    }

    #[test]
    fn off_look_chirp_is_attenuated() {
        let array = MicArray::respeaker_6();
        let look = Direction::new(FRAC_PI_2, FRAC_PI_2);
        let bf = beamformer(look);
        let on = bf.process(&chirp_from(&array, look, 1.0));
        let off = bf.process(&chirp_from(
            &array,
            Direction::new(FRAC_PI_2 + 2.4, FRAC_PI_2),
            1.0,
        ));
        let gain = band_energy(&off) / band_energy(&on);
        assert!(gain < 0.5, "off-look leakage {gain}");
    }

    #[test]
    fn out_of_band_content_is_removed() {
        let look = Direction::new(FRAC_PI_2, FRAC_PI_2);
        let bf = beamformer(look);
        // A 500 Hz tone on every channel (out of the 2–3 kHz design band).
        let n = 2_048;
        let tone: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 500.0 * i as f64 / FS).sin())
            .collect();
        let channels = vec![tone; 6];
        let y = bf.process(&channels);
        let ratio = band_energy(&y[256..n - 256]) / band_energy(&channels[0][256..n - 256]);
        assert!(ratio < 1e-3, "out-of-band leakage {ratio}");
    }

    #[test]
    fn active_bins_cover_the_band() {
        let bf = beamformer(Direction::front());
        // 2–3 kHz at 48 kHz/256-point STFT: bins ~11–16.
        assert!(
            bf.active_bins() >= 5 && bf.active_bins() <= 8,
            "{}",
            bf.active_bins()
        );
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn wrong_channel_count_panics() {
        let bf = beamformer(Direction::front());
        let _ = bf.process(&vec![vec![0.0; 512]; 3]);
    }
}
