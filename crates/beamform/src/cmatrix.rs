//! Small dense complex matrices.
//!
//! MVDR needs `ρ_n⁻¹` for an M×M spatial covariance (M = 6 on the paper's
//! ReSpeaker), so a simple Gauss–Jordan inverse with partial pivoting is
//! both sufficient and robust at this scale.

use crate::error::BeamformError;
use echo_dsp::Complex;

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use echo_beamform::CMatrix;
/// use echo_dsp::Complex;
///
/// let eye = CMatrix::identity(3);
/// let inv = eye.inverse().unwrap();
/// assert_eq!(inv.get(1, 1), Complex::ONE);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// The n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_data(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Conjugate transpose `Aᴴ`.
    pub fn hermitian(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j).conj());
            }
        }
        out
    }

    /// Returns `true` when `A ≈ Aᴴ` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if (self.get(i, j) - self.get(j, i).conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(k, j));
                }
            }
        }
        out
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    acc += self.get(i, j) * xj;
                }
                acc
            })
            .collect()
    }

    /// Adds `ε·I` to a square matrix in place (diagonal loading).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, epsilon: f64) {
        assert_eq!(
            self.rows, self.cols,
            "diagonal loading needs a square matrix"
        );
        for i in 0..self.rows {
            let v = self.get(i, i) + Complex::from_real(epsilon);
            self.set(i, i, v);
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert_eq!(self.rows, self.cols, "trace needs a square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Scales every element by `k`.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v = v.scale(k);
        }
    }

    /// Inverse of a square matrix via Gauss–Jordan elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::SingularMatrix`] when a pivot collapses to
    /// (numerical) zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Result<CMatrix, BeamformError> {
        assert_eq!(self.rows, self.cols, "inverse needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = CMatrix::identity(n);

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below row.
            let mut pivot_row = col;
            let mut pivot_mag = a.get(col, col).abs();
            for r in col + 1..n {
                let mag = a.get(r, col).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(BeamformError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..n {
                    let t = a.get(col, j);
                    a.set(col, j, a.get(pivot_row, j));
                    a.set(pivot_row, j, t);
                    let t = inv.get(col, j);
                    inv.set(col, j, inv.get(pivot_row, j));
                    inv.set(pivot_row, j, t);
                }
            }
            let pivot = a.get(col, col);
            let pinv = pivot.recip();
            for j in 0..n {
                a.set(col, j, a.get(col, j) * pinv);
                inv.set(col, j, inv.get(col, j) * pinv);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == Complex::ZERO {
                    continue;
                }
                for j in 0..n {
                    let v = a.get(r, j) - factor * a.get(col, j);
                    a.set(r, j, v);
                    let v = inv.get(r, j) - factor * inv.get(col, j);
                    inv.set(r, j, v);
                }
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && (0..a.rows()).all(|i| (0..a.cols()).all(|j| (a.get(i, j) - b.get(i, j)).abs() < tol))
    }

    fn test_matrix() -> CMatrix {
        CMatrix::from_data(
            3,
            3,
            vec![
                Complex::new(2.0, 1.0),
                Complex::new(0.5, -0.2),
                Complex::new(0.0, 0.3),
                Complex::new(-1.0, 0.0),
                Complex::new(3.0, 0.0),
                Complex::new(0.7, 0.7),
                Complex::new(0.2, -0.9),
                Complex::new(0.0, 0.0),
                Complex::new(1.5, -0.5),
            ],
        )
    }

    #[test]
    fn identity_inverse_is_identity() {
        let eye = CMatrix::identity(4);
        assert!(approx_eq(&eye.inverse().unwrap(), &eye, 1e-12));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = test_matrix();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(approx_eq(&prod, &CMatrix::identity(3), 1e-10));
        let prod2 = inv.matmul(&a);
        assert!(approx_eq(&prod2, &CMatrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_matrix_errors() {
        let mut a = CMatrix::zeros(2, 2);
        a.set(0, 0, Complex::ONE);
        // Second row all zeros → singular.
        assert_eq!(a.inverse().unwrap_err(), BeamformError::SingularMatrix);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a[0][0] = 0 forces a row swap.
        let a = CMatrix::from_data(
            2,
            2,
            vec![Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO],
        );
        let inv = a.inverse().unwrap();
        assert!(approx_eq(&a.matmul(&inv), &CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn hermitian_transpose() {
        let a = test_matrix();
        let h = a.hermitian();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(h.get(i, j), a.get(j, i).conj());
            }
        }
        assert!(!a.is_hermitian(1e-9));
        let sym = a.matmul(&a.hermitian());
        assert!(sym.is_hermitian(1e-9), "AAᴴ is Hermitian");
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = test_matrix();
        let x = vec![
            Complex::new(1.0, 0.5),
            Complex::new(-2.0, 1.0),
            Complex::new(0.0, -1.0),
        ];
        let y = a.matvec(&x);
        let xm = CMatrix::from_data(3, 1, x.clone());
        let ym = a.matmul(&xm);
        for (i, yi) in y.iter().enumerate() {
            assert!((*yi - ym.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_loading_and_trace() {
        let mut a = CMatrix::zeros(3, 3);
        a.add_diagonal(0.5);
        assert!((a.trace() - Complex::from_real(1.5)).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies_all_entries() {
        let mut a = CMatrix::identity(2);
        a.scale(3.0);
        assert_eq!(a.get(0, 0), Complex::from_real(3.0));
        assert_eq!(a.get(0, 1), Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = CMatrix::identity(2);
        let _ = a.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = CMatrix::zeros(0, 3);
    }
}
