//! Error type for beamforming operations.

use std::error::Error;
use std::fmt;

/// Errors produced while designing or applying beamformer weights.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BeamformError {
    /// A matrix inverse failed because the matrix is singular (or so
    /// ill-conditioned that elimination broke down).
    SingularMatrix,
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
}

impl fmt::Display for BeamformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeamformError::SingularMatrix => {
                write!(
                    f,
                    "covariance matrix is singular; consider diagonal loading"
                )
            }
            BeamformError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for BeamformError {}
