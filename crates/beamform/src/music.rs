//! MUSIC direction-of-arrival estimation.
//!
//! The paper's related work defends smart speakers with voice DoA (2MA,
//! sonar liveness tracking); MUSIC is the classic subspace method for
//! that job and completes this crate's array-processing toolbox. Given
//! snapshots containing `K` narrowband sources, the covariance's noise
//! subspace (its `M−K` weakest eigenvectors) is orthogonal to every
//! source's steering vector, so the pseudo-spectrum
//! `P(θ) = 1 / ‖E_nᴴ a(θ)‖²` peaks sharply at the source azimuths.

use crate::cmatrix::CMatrix;
use crate::eigen::eigh;
use echo_array::{Direction, MicArray};
use echo_dsp::Complex;

/// The MUSIC pseudo-spectrum over an azimuth grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MusicSpectrum {
    /// Azimuth samples, radians, covering (−π, π].
    pub azimuths: Vec<f64>,
    /// Pseudo-spectrum values (arbitrary scale, larger = more source).
    pub values: Vec<f64>,
}

impl MusicSpectrum {
    /// The `k` azimuths with the largest pseudo-spectrum peaks, in
    /// descending peak order.
    pub fn top_directions(&self, k: usize) -> Vec<f64> {
        let n = self.values.len();
        let mut peaks: Vec<(f64, f64)> = (0..n)
            .filter(|&i| {
                let prev = self.values[(i + n - 1) % n];
                let next = self.values[(i + 1) % n];
                self.values[i] > prev && self.values[i] >= next
            })
            .map(|i| (self.values[i], self.azimuths[i]))
            .collect();
        peaks.sort_by(|a, b| b.0.total_cmp(&a.0));
        peaks.into_iter().take(k).map(|(_, az)| az).collect()
    }
}

/// Computes the MUSIC pseudo-spectrum from multichannel narrowband
/// snapshots.
///
/// * `snapshots[m][t]` — analytic sample `t` of microphone `m`.
/// * `num_sources` — assumed source count `K < M`.
/// * `elevation` — the elevation slice to scan (a planar array resolves
///   azimuth only).
///
/// # Panics
///
/// Panics if the snapshot matrix is empty or ragged, or
/// `num_sources >= M`.
pub fn music_spectrum(
    array: &MicArray,
    snapshots: &[Vec<Complex>],
    num_sources: usize,
    f0: f64,
    speed_of_sound: f64,
    elevation: f64,
    grid: usize,
) -> MusicSpectrum {
    let m = array.len();
    assert_eq!(
        snapshots.len(),
        m,
        "snapshots must have one row per microphone"
    );
    let n = snapshots[0].len();
    assert!(n > 0, "need at least one snapshot");
    assert!(snapshots.iter().all(|s| s.len() == n), "ragged snapshots");
    assert!(
        num_sources < m,
        "MUSIC needs fewer sources than microphones"
    );

    // Sample covariance R = (1/N) Σ x xᴴ.
    let mut r = CMatrix::zeros(m, m);
    for t in 0..n {
        for (i, si) in snapshots.iter().enumerate() {
            let xi = si[t];
            for (j, sj) in snapshots.iter().enumerate() {
                let v = r.get(i, j) + xi * sj[t].conj();
                r.set(i, j, v);
            }
        }
    }
    r.scale(1.0 / n as f64);
    // Numerical Hermitian symmetrisation before the eigensolver.
    for i in 0..m {
        for j in i + 1..m {
            let avg = (r.get(i, j) + r.get(j, i).conj()) * 0.5;
            r.set(i, j, avg);
            r.set(j, i, avg.conj());
        }
    }

    let e = eigh(&r);
    // Noise subspace: eigenvectors of the M−K smallest eigenvalues.
    let noise_cols: Vec<usize> = (num_sources..m).collect();

    let azimuths: Vec<f64> = (0..grid)
        .map(|i| -std::f64::consts::PI + 2.0 * std::f64::consts::PI * i as f64 / grid as f64)
        .collect();
    let values = azimuths
        .iter()
        .map(|&az| {
            let a = array.steering_vector_with(Direction::new(az, elevation), f0, speed_of_sound);
            // ‖E_nᴴ a‖².
            let mut denom = 0.0;
            for &col in &noise_cols {
                let proj: Complex = (0..m).map(|i| e.vectors.get(i, col).conj() * a[i]).sum();
                denom += proj.norm_sqr();
            }
            1.0 / denom.max(1e-12)
        })
        .collect();
    MusicSpectrum { azimuths, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_dsp::SPEED_OF_SOUND;
    use std::f64::consts::FRAC_PI_2;

    /// Narrowband plane-wave snapshots plus white noise.
    fn scene(sources: &[(f64, f64)], n: usize) -> (MicArray, Vec<Vec<Complex>>) {
        let array = MicArray::respeaker_6();
        let f0 = 2_500.0;
        let m = array.len();
        let mut snaps = vec![vec![Complex::ZERO; n]; m];
        for (si, &(az, amp)) in sources.iter().enumerate() {
            let a = array.steering_vector_with(Direction::new(az, FRAC_PI_2), f0, SPEED_OF_SOUND);
            for t in 0..n {
                // Random-ish source phase per snapshot (deterministic).
                let phase = (t * (si * 7 + 3)) as f64 * 0.61803;
                let s = Complex::from_polar(amp, phase);
                for (mi, snap) in snaps.iter_mut().enumerate() {
                    snap[t] += s * a[mi];
                }
            }
        }
        // Small white noise.
        for (mi, snap) in snaps.iter_mut().enumerate() {
            for (t, v) in snap.iter_mut().enumerate() {
                let h = ((t * 2_654_435_761 + mi * 97) % 65_536) as f64 / 65_536.0 - 0.5;
                *v += Complex::new(0.02 * h, -0.013 * h);
            }
        }
        (array, snaps)
    }

    fn wrapped_err(a: f64, b: f64) -> f64 {
        let d = (a - b).rem_euclid(2.0 * std::f64::consts::PI);
        d.min(2.0 * std::f64::consts::PI - d)
    }

    #[test]
    fn locates_single_source() {
        let truth = 0.8;
        let (array, snaps) = scene(&[(truth, 1.0)], 256);
        let spec = music_spectrum(&array, &snaps, 1, 2_500.0, SPEED_OF_SOUND, FRAC_PI_2, 720);
        let est = spec.top_directions(1)[0];
        assert!(
            wrapped_err(est, truth) < 0.05,
            "estimated {est}, truth {truth}"
        );
    }

    #[test]
    fn resolves_two_sources() {
        let (a1, a2) = (0.5, 2.2);
        let (array, snaps) = scene(&[(a1, 1.0), (a2, 0.8)], 512);
        let spec = music_spectrum(&array, &snaps, 2, 2_500.0, SPEED_OF_SOUND, FRAC_PI_2, 1_440);
        let est = spec.top_directions(2);
        let hit = |truth: f64| est.iter().any(|&e| wrapped_err(e, truth) < 0.1);
        assert!(hit(a1), "missed {a1}: {est:?}");
        assert!(hit(a2), "missed {a2}: {est:?}");
    }

    #[test]
    fn spectrum_peak_towers_over_background() {
        let (array, snaps) = scene(&[(1.0, 1.0)], 256);
        let spec = music_spectrum(&array, &snaps, 1, 2_500.0, SPEED_OF_SOUND, FRAC_PI_2, 720);
        let peak = spec.values.iter().cloned().fold(0.0f64, f64::max);
        let median = {
            let mut v = spec.values.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(peak > 20.0 * median, "peak {peak}, median {median}");
    }

    #[test]
    #[should_panic(expected = "fewer sources")]
    fn too_many_sources_panics() {
        let (array, snaps) = scene(&[(1.0, 1.0)], 16);
        let _ = music_spectrum(&array, &snaps, 6, 2_500.0, SPEED_OF_SOUND, FRAC_PI_2, 90);
    }
}
