//! # EchoImage
//!
//! A Rust reproduction of **"EchoImage: User Authentication on Smart
//! Speakers Using Acoustic Signals"** (Ren et al., ICDCS 2023).
//!
//! EchoImage authenticates smart-speaker users without passwords,
//! cameras or wearables: the speaker emits a short 2–3 kHz chirp, its
//! microphone array records the echoes bouncing off the user's body,
//! MVDR beamforming turns those echoes into an *acoustic image*, and an
//! SVM cascade decides who (if anyone) is standing there.
//!
//! This crate is a facade re-exporting the workspace's layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dsp`] | `echo-dsp` | FFT, chirps, Butterworth filters, Hilbert, matched filter |
//! | [`mod@array`] | `echo-array` | microphone-array geometry and steering |
//! | [`sim`] | `echo-sim` | acoustic scene simulator (bodies, rooms, noise) |
//! | [`beamform`] | `echo-beamform` | delay-and-sum and MVDR beamforming |
//! | [`ml`] | `echo-ml` | frozen CNN features, SVM (SMO), one-class SVM |
//! | [`core`] | `echoimage-core` | the paper's pipeline: ranging, imaging, augmentation, authentication |
//! | [`eval`] | `echo-eval` | metrics and the runners for every paper figure |
//!
//! # Quickstart
//!
//! ```
//! use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};
//! use echoimage::core::enrollment::{enrollment_features, EnrollmentConfig};
//! use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
//! use echoimage::core::auth::{AuthConfig, Authenticator};
//!
//! // A simulated user stands 0.7 m in front of a smart speaker.
//! let scene = Scene::new(SceneConfig::laboratory_quiet(7));
//! let alice = BodyModel::from_seed(1);
//! let placement = Placement::standing_front(0.7);
//!
//! // Enrol with the production recipe: two registration visits, each
//! // ranged and imaged independently, then plane-diversified and
//! // distance-augmented (§V-F) so the cloud spans day-to-day drift.
//! let pipeline = EchoImagePipeline::new(PipelineConfig::default());
//! let visits: Vec<_> = (0..2u32)
//!     .map(|v| scene.capture_train(&alice, &placement, v, 3, u64::from(v) * 100))
//!     .collect();
//! let features =
//!     enrollment_features(&pipeline, &visits, &EnrollmentConfig::default()).unwrap();
//! let auth = Authenticator::enroll(&[(1, features)], &AuthConfig::default()).unwrap();
//!
//! // Authenticate a fresh capture of the same user.
//! let attempt = scene.capture_train(&alice, &placement, 9, 2, 900);
//! let probe = pipeline.features_from_train(&attempt).unwrap();
//! assert!(auth.authenticate(&probe[0]).is_accepted());
//! ```

pub use echo_array as array;
pub use echo_beamform as beamform;
pub use echo_dsp as dsp;
pub use echo_eval as eval;
pub use echo_ml as ml;
pub use echo_sim as sim;
pub use echoimage_core as core;
