//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], and [`Rng`] with `gen_range`/`gen_bool` — over any
//! generator core (the vendored `rand_chacha` supplies ChaCha8). The
//! sampling algorithms are simple and deterministic; they do not
//! promise the same streams as upstream rand, only stable streams for
//! this workspace's seeded simulations.

use std::ops::{Range, RangeInclusive};

/// A low-level generator: a source of uniform random words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction upstream rand uses) and builds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that knows how to draw a uniform sample of `T` from a
/// generator. `T` is a type parameter (not an associated type) so that
/// float-literal ranges infer through arithmetic on the result, as
/// with upstream rand.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform f64 in `[0, 1)` from the generator's top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range. The blanket
/// `SampleRange` impls below are generic over this trait — a single
/// impl per range shape, so type inference unifies the range's element
/// type with `gen_range`'s result directly (as upstream rand does).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start < end, "empty range in gen_range");
        let span = end - start;
        let v = start + unit_f64(rng) * span;
        // Floating rounding can land exactly on `end`; stay half-open.
        if v >= end {
            end - span * f64::EPSILON
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start <= end, "empty range in gen_range");
        start + unit_f64(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        f64::sample_half_open(f64::from(start), f64::from(end), rng) as f32
    }

    fn sample_inclusive<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        f64::sample_inclusive(f64::from(start), f64::from(end), rng) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(start, end, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Mirror of `rand::rngs` with a SplitMix64-based small generator, for
/// tests that want an Rng without pulling in `rand_chacha`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(u64::from_le_bytes(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
