//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Derives the vendored serde stub's [`Serialize`]/[`Deserialize`]
//! (value-tree) traits. Supports exactly the shapes this workspace
//! uses: structs with named fields, and enums whose variants are unit
//! or carry named fields. The only `#[serde(...)]` attribute honoured
//! is `#[serde(skip)]` on struct fields (omitted when serialising,
//! rebuilt via `Default` when deserialising); no generics — otherwise
//! unsupported input is a compile error rather than silently wrong
//! output.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`
//! — those are registry crates this build environment cannot fetch).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// A named field plus whether `#[serde(skip)]` marked it.
struct Field {
    name: String,
    skip: bool,
}

/// A variant name plus its named fields (`None` for unit variants).
type Variant = (String, Option<Vec<Field>>);

/// A parsed `struct`/`enum` item, reduced to what codegen needs.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "`{name}`: generic types are not supported by the vendored serde_derive"
        ));
    }
    let body = loop {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "`{name}`: tuple structs are not supported by the vendored serde_derive"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("`{name}`: missing body")),
        }
    };
    match kw.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skips leading attributes and visibility, reporting whether any
/// attribute was `#[serde(skip)]`.
fn skip_attrs_and_vis<I: Iterator<Item = TokenTree>>(it: &mut Peekable<I>) -> bool {
    let mut serde_skip = false;
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The `[...]` attribute body.
                if let Some(TokenTree::Group(g)) = it.next() {
                    serde_skip |= is_serde_skip(g.stream());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // Optional `(crate)` etc.
                if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    it.next();
                }
            }
            _ => return serde_skip,
        }
    }
}

/// Recognises an attribute body of exactly `serde(skip)`.
fn is_serde_skip(attr: TokenStream) -> bool {
    let mut it = attr.into_iter();
    match (it.next(), it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)), None)
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let mut inner = g.stream().into_iter();
            matches!(
                (inner.next(), inner.next()),
                (Some(TokenTree::Ident(arg)), None) if arg.to_string() == "skip"
            )
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` named-field lists.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let skip = skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: commas nested in generics don't terminate it.
        let mut angle_depth = 0i32;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let mut fields = None;
        match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                it.next();
                fields = Some(parse_named_fields(inner)?);
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("variant `{name}`: tuple variants are not supported by the vendored serde_derive"));
            }
            _ => {}
        }
        // Consume up to and including the separating comma (also skips
        // explicit discriminants, which carry no commas at this level).
        for tt in it.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn serialize_impl(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let mut entries = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let f = &f.name;
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{entries}])\n\
                     }}\n\
                 }}\n"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => {
                        let _ = write!(
                            arms,
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        );
                    }
                    Some(fs) => {
                        let pat = fs
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut entries = String::new();
                        for f in fs.iter().filter(|f| !f.skip) {
                            let f = &f.name;
                            let _ = write!(
                                entries,
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{v} {{ {pat} }} => ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"),\
                                 ::serde::Value::Obj(::std::vec![{entries}])\
                             )]),"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}\n"
            );
        }
    }
    out
}

fn deserialize_impl(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let n = &f.name;
                if f.skip {
                    let _ = write!(inits, "{n}: ::core::default::Default::default(),");
                } else {
                    let _ = write!(inits, "{n}: ::serde::field(v, \"{n}\")?,");
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}\n"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => {
                        let _ = write!(
                            arms,
                            "::serde::Value::Str(s) if s == \"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                        );
                    }
                    Some(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            let n = &f.name;
                            if f.skip {
                                let _ = write!(inits, "{n}: ::core::default::Default::default(),");
                            } else {
                                let _ = write!(inits, "{n}: ::serde::field(inner, \"{n}\")?,");
                            }
                        }
                        let _ = write!(
                            arms,
                            "::serde::Value::Obj(entries) if entries.len() == 1 && entries[0].0 == \"{v}\" => {{\
                                 let inner = &entries[0].1;\
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }})\
                             }},"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError(\n\
                                 ::std::format!(\"no variant of {name} matches {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            );
        }
    }
    out
}

fn run(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error emission failed"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, serialize_impl)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, deserialize_impl)
}
