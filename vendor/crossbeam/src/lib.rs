//! Offline stand-in for the `crossbeam` crate.
//!
//! Supplies the pieces this workspace uses: `crossbeam::channel`
//! (MPMC unbounded/bounded channels built on a mutex + condvar) and
//! `crossbeam::scope` (delegating to `std::thread::scope`). The
//! channel disconnects when every `Sender` is dropped, which is what
//! panic-safe fan-in collection relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of a channel. Cloning adds another producer.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel. Cloning adds another consumer.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// This stand-in never reports send failure (receivers share the
    /// queue's lifetime), but the type keeps call sites source-compatible.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates a channel with `_cap` ignored (behaves as unbounded).
    ///
    /// The workspace only uses capacity as a throughput hint, so the
    /// stand-in does not block producers.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(value);
            drop(queue);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake everyone so they observe EOF.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains the channel until disconnect, yielding values in order.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Blocking iterator over received values; ends on disconnect.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    /// Owning blocking iterator; ends on disconnect.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }
}

/// Spawns a scope whose threads may borrow from the caller's stack,
/// mirroring `crossbeam::scope` on top of `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(f))
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_preserves_all_messages() {
        let (tx, rx) = channel::unbounded::<(usize, usize)>();
        std::thread::scope(|s| {
            for worker in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send((worker, i)).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got: Vec<_> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        assert_eq!(got[0], (0, 0));
        assert_eq!(got[399], (3, 99));
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
