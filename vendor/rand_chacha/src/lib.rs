//! Offline stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a real 8-round ChaCha keystream generator (the
//! IETF variant's block function with a 64-bit counter) exposing the
//! vendored `rand` traits. Streams are deterministic per seed but are
//! not guaranteed identical to upstream `rand_chacha`'s.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// An 8-round ChaCha random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 forces a refill.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mean = (0..20_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
