//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde stub's [`Value`] tree as JSON text and
//! parses it back. Floats are written with Rust's shortest round-trip
//! formatting, so `to_string` → `from_str` reproduces every `f64`
//! bit-for-bit; integers stay integers.

pub use serde::Value;
use serde::{de::DeserializeOwned, Serialize};
use std::fmt;

/// JSON serialisation / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float (JSON has
/// no representation for NaN/∞).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises `value` as human-readable JSON (two-space indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep the number a float through a round trip.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' | b'f' | b'n' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                c => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                c => return Err(Error(format!("expected `,` or `]`, found `{}`", c as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        c => return Err(Error(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from this byte: multibyte chars
                    // pass through unmodified.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected a value at byte {start}")));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1f64, -2.5e-7, 1.0, 12345.0, f64::MIN_POSITIVE, 1e300] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = vec![vec![1usize, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<usize>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\"\\\npath/ü".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn integer_zero_stays_integer_and_float_zero_stays_float() {
        assert_eq!(to_string(&0u64).unwrap(), "0");
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
        let back: f64 = from_str("0.0").unwrap();
        assert_eq!(back, 0.0);
    }
}
