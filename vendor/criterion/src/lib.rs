//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches compile against
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) backed by a small wall-clock
//! harness: each benchmark is auto-calibrated to a target duration and
//! reports mean ns/iter. No statistics, plots, or baselines — just
//! enough to compile under `cargo bench --no-run` and give usable
//! relative numbers when actually run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark; kept short because this
/// harness reports a single mean rather than a distribution.
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// Top-level benchmark driver.
pub struct Criterion {
    /// Nominal sample count (scales the measuring window slightly).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the nominal sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this harness).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both
/// plain strings and explicit ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration count to roughly `TARGET_MEASURE`, runs the
/// benchmark once at that count, and prints mean ns/iter.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, _sample_size: usize, f: &mut F) {
    // Calibration: grow the iteration count until one pass takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let elapsed = b.elapsed;
        if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };

    // Measurement pass sized to the target window.
    let measure_iters =
        ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 28);
    let mut b = Bencher {
        iters: measure_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns_per_iter = b.elapsed.as_nanos() as f64 / measure_iters as f64;

    if ns_per_iter >= 1e6 {
        println!("bench {label:<50} {:>12.3} ms/iter", ns_per_iter / 1e6);
    } else if ns_per_iter >= 1e3 {
        println!("bench {label:<50} {:>12.3} us/iter", ns_per_iter / 1e3);
    } else {
        println!("bench {label:<50} {ns_per_iter:>12.1} ns/iter");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("forward", 1024);
        assert_eq!(id.0, "forward/1024");
        let id = BenchmarkId::from_parameter("Das");
        assert_eq!(id.0, "Das");
    }
}
