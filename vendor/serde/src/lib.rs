//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors a small, self-contained subset of serde's public API — enough
//! for the repo's `#[derive(Serialize, Deserialize)]` types and the
//! `serde_json` round trips the evaluation artefacts rely on.
//!
//! Architecturally this is *not* upstream serde: instead of the
//! serializer/deserializer visitor pair, every [`Serialize`] type lowers
//! itself to a [`Value`] tree and every [`Deserialize`] type rebuilds
//! itself from one. The JSON text layer lives in the sibling
//! `serde_json` stub. Round trips are bit-exact for every type in this
//! workspace (floats travel through Rust's shortest round-trip
//! formatting).

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialised value tree (the data model shared with `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (serialised without a fractional part).
    I64(i64),
    /// Non-negative integer (serialised without a fractional part).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

/// Deserialisation error: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialisation error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialisation data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of the serialisation data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Mirror of `serde::de` for the `DeserializeOwned` bound used in tests.
pub mod de {
    /// Owned deserialisation marker; blanket-covers every
    /// [`Deserialize`](crate::Deserialize) implementor, like upstream.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser` (upstream path compatibility).
pub mod ser {
    pub use crate::Serialize;
}

fn expected(what: &str, v: &Value) -> DeError {
    DeError(format!("expected {what}, found {v:?}"))
}

/// Looks up a named field of an object value and deserialises it.
/// Support routine for derived `Deserialize` impls.
///
/// # Errors
///
/// Returns [`DeError`] when `v` is not an object, the field is missing,
/// or the field fails to deserialise.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Obj(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => {
                T::from_value(fv).map_err(|e| DeError(format!("in field `{name}`: {}", e.0)))
            }
            None => Err(DeError(format!("missing field `{name}`"))),
        },
        other => Err(expected("object", other)),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| expected(stringify!($t), v)),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| expected(stringify!($t), v)),
                    other => Err(expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| expected(stringify!($t), v)),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| expected(stringify!($t), v)),
                    other => Err(expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(expected(concat!($len, "-tuple"), other)),
                }
            }
        }
    };
}

impl_tuple!(A: 0; 1);
impl_tuple!(A: 0, B: 1; 2);
impl_tuple!(A: 0, B: 1, C: 2; 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3; 4);

/// Map keys must serialise to / parse from plain strings (JSON objects).
pub trait KeyCodec: Sized + Ord {
    /// Renders the key for use as an object member name.
    fn encode_key(&self) -> String;
    /// Parses the key back from an object member name.
    fn decode_key(s: &str) -> Result<Self, DeError>;
}

impl KeyCodec for String {
    fn encode_key(&self) -> String {
        self.clone()
    }
    fn decode_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl KeyCodec for $t {
            fn encode_key(&self) -> String {
                self.to_string()
            }
            fn decode_key(s: &str) -> Result<Self, DeError> {
                s.parse()
                    .map_err(|_| DeError(format!("bad integer key `{s}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: KeyCodec, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.encode_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: KeyCodec, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, fv)| Ok((K::decode_key(k)?, V::from_value(fv)?)))
                .collect(),
            other => Err(expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [0.0f64, -1.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(
                f64::from_value(&v.to_value()).unwrap().to_bits(),
                v.to_bits()
            );
        }
        assert_eq!(
            usize::from_value(&usize::MAX.to_value()).unwrap(),
            usize::MAX
        );
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1usize, 2.5f64), (3, -4.0)];
        let back: Vec<(usize, f64)> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), None);
    }
}
