//! Offline stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! ergonomics: `lock()`/`read()`/`write()` return guards directly
//! (poisoning is swallowed — a panicked writer's data stays usable,
//! which matches parking_lot's no-poisoning semantics).

use std::sync;

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// One-time initialisation, parking_lot style.
#[derive(Debug)]
pub struct Once(sync::Once);

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Self {
        Once(sync::Once::new())
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.0.call_once(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_shared_counter() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
