//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: range
//! strategies over numeric types, `prop::collection::vec`, the
//! `proptest!` macro with an optional `#![proptest_config(..)]`
//! header, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Cases are generated from a ChaCha8 stream seeded by the
//! test name, so runs are deterministic. No shrinking is performed:
//! a failing case reports its inputs verbatim.

use std::fmt::Debug;
use std::ops::Range;

pub use rand_chacha::ChaCha8Rng;

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug + Clone;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just(value)` always yields `value`.
#[derive(Debug, Clone)]
pub struct Just<T: Debug + Clone>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{ChaCha8Rng, Strategy};
    use std::ops::Range;

    /// Strategy yielding a `Vec` whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec<T>` of `len`-many draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// How a single generated case ended, other than success.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; carries the rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
}

impl TestCaseError {
    /// Constructs a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Constructs an input rejection.
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration consumed by `proptest!`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator: the seed is a hash of the test
/// name, so each test sees a stable stream across runs and machines.
pub fn rng_for(test_name: &str) -> ChaCha8Rng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ChaCha8Rng::seed_from_u64(h)
}

/// Mirror of the `proptest::prelude` import surface.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Mirror of the `prop::` path used by `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current inputs, drawing a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by one or more
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher: expands each `fn` item into a `#[test]` runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let case = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = ::core::clone::Clone::clone(&$arg);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\ninputs: {:#?}",
                            msg,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
            assert!(
                accepted >= config.cases.min(1),
                "proptest: every generated case was rejected by prop_assume! \
                 ({attempts} attempts)"
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn addition_commutes(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            prop_assert_eq!(a + b, b + a);
        }

        fn assume_filters_inputs(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        fn vec_lengths_respect_range(xs in prop::collection::vec(0u64..10, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
        }
    }

    #[test]
    fn rng_is_stable_per_name() {
        use rand::RngCore;
        let a = crate::rng_for("x").next_u64();
        let b = crate::rng_for("x").next_u64();
        let c = crate::rng_for("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
